"""Declarative sweep API: named-axis workloads over the batch engine.

Every paper-facing artefact is a cross product of the same few axes —
ring ``configuration`` (Fig. 3), transistor ``width_ratio`` (Fig. 2),
process ``sample`` (the Monte-Carlo calibration argument), ``supply``
and ``temperature`` — yet before this module each cross product was a
bespoke entry point threading positional ndarray dimensions by hand.
This module turns the workload itself into data:

* :class:`Axis` — one named axis with coordinate labels.  The known
  axes are ``technology`` (registered process nodes, one evaluation
  context per coordinate), ``configuration``, ``width_ratio``,
  ``resolution`` (the thermal grid's density), ``site``, ``supply``,
  ``sample`` and ``temperature`` (that tuple,
  :data:`CANONICAL_AXIS_ORDER`, is also the canonical broadcast order
  of the result dimensions).
* :class:`Sweep` — a builder that composes axes over a base context
  (technology / library / configuration / ring) plus an observable
  (period, frequency, the sensor transfer curve, calibration error,
  non-linearity).
* :class:`SweepPlan` — the planner: validates the axis combination and
  lowers the named axes onto numpy broadcast dimensions.  The
  ``sample`` and ``supply`` axes stack into one struct-of-arrays
  technology population (:mod:`repro.tech.stacked`); the
  ``configuration`` axis stacks into a
  :class:`~repro.oscillator.bank.ConfigurationBank` so the whole
  Fig. 3 x Monte-Carlo cross product evaluates as a single
  ``(C, S, T)`` broadcast; ``width_ratio`` (a geometry axis that
  rebuilds the cell) lowers to a thin outer loop over otherwise fully
  broadcast sub-tensors.
* :class:`SweepResult` — a labeled ndarray container (axis names +
  coordinates with ``select`` / ``isel`` / ``squeeze`` / ``to_dict``
  accessors), so callers stop tracking which raw dimension is which.

Example — the Fig. 3 x Monte-Carlo cross product in one expression::

    result = (
        Sweep(technology=CMOS035)
        .over(Axis.configuration(PAPER_FIG3_CONFIGURATIONS))
        .over(Axis.sample(sample_technology_array(CMOS035, 1000, seed=1)))
        .over(Axis.temperature(np.linspace(-50.0, 150.0, 41)))
        .observe("period")
        .run()
    )
    result.dims                       # ('configuration', 'sample', 'temperature')
    result.select(configuration="5INV").values.shape   # (1000, 41)

The rewritten experiments (:mod:`repro.experiments.fig2_sizing`,
:mod:`repro.experiments.fig3_cellmix`,
:mod:`repro.experiments.calibration_study`,
:mod:`repro.analysis.supply`, :mod:`repro.analysis.montecarlo`) all
build their period tensors through this API, and
:class:`repro.engine.batch.BatchEvaluator` remains as a thin
backward-compatible adapter over it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..cells.library import CellLibrary, default_library
from ..core.readout import PeriodCounter, ReadoutConfig
from ..core.sensor_bank import SensorBank
from ..oscillator.bank import ConfigurationBank, normalise_configurations
from ..oscillator.config import ConfigurationError, RingConfiguration
from ..oscillator.period import default_temperature_grid
from ..oscillator.ring import RingOscillator
from ..tech.parameters import Technology, TechnologyError
from ..tech.stacked import (
    TechnologyArray,
    stack_technologies,
    technology_array_from_columns,
    technology_column_arrays,
)
from ..thermal.floorplan import Floorplan
from ..thermal.grid import ThermalGrid, ThermalGridParameters
from ..thermal.operator import SOLVE_METHODS, ThermalOperator
from ..thermal.power import PowerMap

__all__ = [
    "Axis",
    "CANONICAL_AXIS_ORDER",
    "OBSERVABLES",
    "Sweep",
    "SweepError",
    "SweepPlan",
    "SweepResult",
    "TechnologyMismatchError",
]

#: The canonical broadcast order of the named axes: every
#: :class:`SweepResult` carries its dimensions in this order no matter
#: the order the axes were declared in.  ``technology`` is outermost —
#: each node is a complete evaluation context (its own cell library and
#: rings), so the axis lowers to an outer per-node loop around the fully
#: broadcast inner sweep.  ``site`` (the sensor-bank location axis) sits
#: outside the ``supply``/``sample`` pair because those two lower onto
#: one flat supply-major population axis that must stay contiguous to
#: un-reshape; ``resolution`` (the thermal grid's density — a
#: grid-refinement axis that re-solves the die's thermal field per
#: coordinate, one cached
#: :class:`~repro.thermal.operator.ThermalOperator` entry each) sits
#: just outside ``site`` because each refinement produces one junction
#: temperature per site.
CANONICAL_AXIS_ORDER = (
    "technology",
    "configuration",
    "width_ratio",
    "resolution",
    "site",
    "supply",
    "sample",
    "temperature",
)

#: The observables a sweep can evaluate.  All preserve the axis shape:
#: ``period`` (s) and ``frequency`` (Hz) are the raw tensor;
#: ``code`` is the counter-quantised digital output (the readout comes
#: from the site axis's bank, or the sweep's ``readout=``; codes beyond
#: the counter width are *clamped* to ``max_code`` exactly as the
#: hardware saturates — use :meth:`repro.core.SensorBank.scan` when the
#: saturation mask itself is needed);
#: ``power`` (W) is the free-running dynamic power
#: ``f * Vdd^2 * C_switched``;
#: ``transfer_c`` is the two-point-calibrated temperature estimate (the
#: ideal sensor transfer curve, calibrated per row at the sweep's
#: endpoint temperatures); ``calibration_error_c`` is that estimate
#: minus the true temperature; ``nonlinearity_percent`` is the paper's
#: endpoint-fit non-linearity error in percent of full scale.
OBSERVABLES = (
    "period",
    "frequency",
    "code",
    "power",
    "transfer_c",
    "calibration_error_c",
    "nonlinearity_percent",
)

#: Observables fit against the sweep's endpoint temperatures; they need
#: an explicit (or defaulted) temperature axis, which a site axis with
#: per-site junction temperatures does not have.
_ENDPOINT_OBSERVABLES = ("transfer_c", "calibration_error_c", "nonlinearity_percent")


class SweepError(ValueError):
    """Raised for invalid sweep specifications or result queries."""


class TechnologyMismatchError(SweepError):
    """A serialized technology reference does not match this process.

    Raised by :meth:`Sweep.from_dict` / :meth:`Axis.from_dict` when a
    ``{name, digest}`` technology reference names a node this process's
    registry does not know, or knows under a *different* content digest
    — e.g. two hosts sharing a cache directory that disagree about what
    a name means, or one host after
    ``register_technology(..., overwrite=True)``.  Structured so the
    sweep service can answer with its ``tech-mismatch`` error code
    instead of silently evaluating the wrong physics.

    Attributes
    ----------
    technology_name:
        The node name the spec referenced.
    spec_digest:
        The content digest the spec declared (``None`` if absent).
    local_digest:
        The digest this process's registry holds for that name
        (``None`` when the name is unregistered here).
    """

    def __init__(
        self,
        message: str,
        *,
        technology_name: Optional[str] = None,
        spec_digest: Optional[str] = None,
        local_digest: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.technology_name = technology_name
        self.spec_digest = spec_digest
        self.local_digest = local_digest


def _technology_to_dict(tech: Technology) -> Dict[str, Any]:
    """Serialize a base/axis technology as a content-addressed reference.

    Registered nodes (value-equal to their registry entry) travel as a
    compact ``{name, digest}`` pair; unregistered nodes carry their full
    declarative parameter bundle inline (plus the digest computed over
    it, so the receiver can verify the payload survived transport).
    Either way the canonical spec contains the digest — the caches key
    on what the technology *is*, not what it is called.
    """
    from ..tech.registry import default_registry, technology_digest

    spec = default_registry().spec_for(tech)
    if spec is not None:
        return {"name": spec.name, "digest": spec.digest}
    return {
        "name": tech.name,
        "digest": technology_digest(tech),
        "parameters": tech.to_dict(),
    }


def _technology_from_dict(payload: Mapping[str, Any]) -> Technology:
    """Resolve a serialized technology reference against this process.

    ``{name, digest}`` references resolve through the registry and the
    digest must match the registered node's; inline ``parameters``
    bundles are rebuilt (re-running all parameter-range validation) and
    their recomputed digest must match the declared one.  Mismatches
    raise :class:`TechnologyMismatchError` — never a silent fallback to
    whatever this process happens to call ``name``.
    """
    from ..tech.registry import default_registry, technology_digest

    if not isinstance(payload, Mapping):
        raise SweepError(
            f"a serialized technology must be a mapping of the form "
            f"{{name, digest[, parameters]}}, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - {"name", "digest", "parameters"})
    if unknown:
        raise SweepError(
            f"serialized technology has unknown field(s) {unknown}; "
            f"expected {{name, digest[, parameters]}}"
        )
    name = payload.get("name")
    digest = payload.get("digest")
    if not isinstance(name, str) or not name:
        raise SweepError("serialized technology needs a non-empty string 'name'")
    if not isinstance(digest, str) or not digest:
        raise SweepError("serialized technology needs a non-empty string 'digest'")
    if payload.get("parameters") is not None:
        try:
            tech = Technology.from_dict(payload["parameters"])
        except TechnologyError as error:
            raise SweepError(
                f"invalid inline technology parameters for {name!r}: {error}"
            ) from error
        if tech.name != name:
            raise SweepError(
                f"serialized technology name {name!r} does not match its "
                f"inline parameter bundle's name {tech.name!r}"
            )
        actual = technology_digest(tech)
        if actual != digest:
            raise TechnologyMismatchError(
                f"inline parameters for technology {name!r} hash to "
                f"{actual[:12]}..., not the declared digest {digest[:12]}...; "
                f"the spec was corrupted or tampered with in transport",
                technology_name=name,
                spec_digest=digest,
                local_digest=actual,
            )
        return tech
    registry = default_registry()
    if name not in registry:
        raise TechnologyMismatchError(
            f"technology {name!r} (digest {digest[:12]}...) is not registered "
            f"in this process and the spec carries no inline parameters; "
            f"register the node here or serialize it from an unregistered "
            f"Technology object",
            technology_name=name,
            spec_digest=digest,
            local_digest=None,
        )
    spec = registry.spec(name)
    if spec.digest != digest:
        raise TechnologyMismatchError(
            f"technology {name!r} is registered here with digest "
            f"{spec.digest[:12]}... but the spec references digest "
            f"{digest[:12]}...; the two registries disagree about what "
            f"{name!r} means — refusing to evaluate the wrong physics",
            technology_name=name,
            spec_digest=digest,
            local_digest=spec.digest,
        )
    return spec.technology


def _duplicate_labels(labels: Sequence[Any]) -> List[Any]:
    """The labels appearing more than once, in first-appearance order."""
    seen: set = set()
    duplicates: List[Any] = []
    for label in labels:
        if label in seen and label not in duplicates:
            duplicates.append(label)
        seen.add(label)
    return duplicates


# --------------------------------------------------------------------------- #
# axes
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Axis:
    """One named sweep axis: coordinate labels plus the lowering payload.

    Use the named constructors (:meth:`technology`, :meth:`temperature`,
    :meth:`sample`, :meth:`configuration`, :meth:`supply`,
    :meth:`width_ratio`) — they validate the values and attach the
    payload the planner lowers from.
    Coordinates keep the caller's order (the planner never reorders
    *within* an axis, only the axes themselves into
    :data:`CANONICAL_AXIS_ORDER`).
    """

    name: str
    coordinates: Tuple[Any, ...]
    payload: Any = None

    def __post_init__(self) -> None:
        if self.name not in CANONICAL_AXIS_ORDER:
            raise SweepError(
                f"unknown axis {self.name!r}; named axes are "
                f"{', '.join(CANONICAL_AXIS_ORDER)}"
            )
        if not self.coordinates:
            raise SweepError(f"axis {self.name!r} needs at least one coordinate")

    def __len__(self) -> int:
        return len(self.coordinates)

    # ------------------------------------------------------------------ #
    # named constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def technology(
        cls, technologies: Sequence[Union[Technology, str]]
    ) -> "Axis":
        """The technology-node axis: one process node per coordinate.

        Accepts :class:`~repro.tech.parameters.Technology` objects or
        registered node names (resolved through the content-addressed
        registry).  Coordinates are the node names, so they must be
        unique.  Each node is a complete evaluation context — its own
        default cell library and rings — so the axis lowers to an outer
        per-node loop around the fully broadcast inner sweep, stacked
        outermost in the canonical result order.  Mutually exclusive
        with a ``technology=``/``library=``/``ring=`` base and with the
        ``site``/``sample`` axes (a sensor bank or a concrete
        Monte-Carlo population pins one node).
        """
        from ..tech.libraries import get_technology

        nodes: List[Technology] = []
        for entry in list(technologies):
            if isinstance(entry, str):
                try:
                    entry = get_technology(entry)
                except TechnologyError as error:
                    raise SweepError(str(error)) from error
            if not isinstance(entry, Technology):
                raise SweepError(
                    f"the technology axis takes Technology objects or "
                    f"registered names, got {type(entry).__name__}"
                )
            nodes.append(entry)
        if not nodes:
            raise SweepError("technology axis needs at least one node")
        duplicates = _duplicate_labels([node.name for node in nodes])
        if duplicates:
            raise SweepError(
                f"technology axis has duplicate node names {duplicates}; "
                "coordinates must be unique per axis"
            )
        return cls(
            "technology", tuple(node.name for node in nodes), payload=tuple(nodes)
        )

    @classmethod
    def temperature(cls, temperatures_c: Sequence[float]) -> "Axis":
        """The junction-temperature axis (deg C), evaluated pointwise.

        The grid is kept in the caller's order (periods are evaluated
        elementwise, so ordering is presentation only).  Each point must
        be unique — duplicates would collide as coordinate labels in the
        result (and re-evaluate the same point for nothing).
        """
        temps = np.asarray(list(temperatures_c), dtype=float)
        if temps.ndim != 1 or temps.size < 1:
            raise SweepError("temperature axis needs a 1-D grid of at least one point")
        if np.any(~np.isfinite(temps)):
            raise SweepError("temperature axis must be finite (no NaN or infinity)")
        duplicates = _duplicate_labels([float(t) for t in temps])
        if duplicates:
            raise SweepError(
                f"temperature axis has duplicate points {duplicates}; "
                "coordinates must be unique per axis"
            )
        return cls("temperature", tuple(float(t) for t in temps))

    @classmethod
    def sample(cls, technologies) -> "Axis":
        """The process-sample axis: a technology population.

        Accepts a stacked :class:`~repro.tech.stacked.TechnologyArray`
        (preferred — it broadcasts as-is) or a sequence of
        :class:`~repro.tech.parameters.Technology` samples (stacked by
        the planner when possible, per-sample loop otherwise).
        Coordinates are the sample indices.
        """
        if isinstance(technologies, TechnologyArray):
            count = len(technologies)
        else:
            technologies = list(technologies)
            count = len(technologies)
        if count < 1:
            raise SweepError("sample axis needs at least one technology sample")
        return cls("sample", tuple(range(count)), payload=technologies)

    @classmethod
    def configuration(
        cls,
        configurations: Union[
            Mapping[str, RingConfiguration],
            Sequence[Union[RingConfiguration, str]],
        ],
    ) -> "Axis":
        """The ring-configuration axis (the paper's Fig. 3 knob).

        Accepts a label-to-configuration mapping, or a sequence of
        configurations / parseable strings (labelled by their canonical
        ``cfg.label()``).  Lowered onto a
        :class:`~repro.oscillator.bank.ConfigurationBank` — the whole
        axis evaluates as one broadcast, not one pass per ring.
        """
        try:
            labels, configs = normalise_configurations(configurations)
        except ConfigurationError as error:
            raise SweepError(str(error)) from error
        return cls(
            "configuration",
            labels,
            payload=dict(zip(labels, configs)),
        )

    @classmethod
    def site(
        cls,
        bank: SensorBank,
        junction_temperatures_c: Optional[Sequence[float]] = None,
    ) -> "Axis":
        """The sensor-site axis: a floorplan bank of identical sensors.

        Backed by a :class:`~repro.core.sensor_bank.SensorBank`.  Two
        modes:

        * with ``junction_temperatures_c`` (one per site, in site
          order) the sweep *scans* the bank — every site is evaluated
          at its own local junction temperature (usually gathered from
          a solved :class:`~repro.thermal.grid.TemperatureMap`), and
          the result has a ``site`` dimension instead of a
          ``temperature`` one;
        * without, the sweep *characterises* the bank — every site is
          evaluated over the shared temperature axis.  The sites share
          one ring design (as the multiplexed hardware shares one
          readout), so this mode is a broadcast along the site
          dimension, not a recompute.

        Coordinates are the site names.  Mutually exclusive with the
        ``configuration`` and ``width_ratio`` axes (the bank already
        fixes the ring design).
        """
        if not isinstance(bank, SensorBank):
            raise SweepError(
                f"the site axis takes a SensorBank, got {type(bank).__name__}"
            )
        temps = None
        if junction_temperatures_c is not None:
            temps = np.asarray(list(junction_temperatures_c), dtype=float)
            if temps.shape != (bank.site_count,):
                raise SweepError(
                    f"expected one junction temperature per site "
                    f"({bank.site_count}), got shape {temps.shape}"
                )
            if np.any(~np.isfinite(temps)):
                raise SweepError("junction temperatures must be finite")
        return cls(
            "site",
            bank.names(),
            payload={"bank": bank, "junction_temperatures_c": temps},
        )

    @classmethod
    def resolution(
        cls,
        resolutions: Sequence[int],
        floorplan: Floorplan,
        ambient_c: float = 45.0,
        parameters: ThermalGridParameters = ThermalGridParameters(),
        method: str = "auto",
    ) -> "Axis":
        """The thermal-grid density axis (a grid-refinement study).

        For each coordinate ``r`` the planner rasterises the floorplan's
        power map onto an ``r x r`` grid, solves the steady-state die
        temperature field through the process-wide
        :class:`~repro.thermal.operator.ThermalOperator` cache (one
        entry — one factorization or preconditioner — per resolution;
        ``method`` routes large grids through the iterative fallback)
        and reads every sensor site of the sweep's ``site`` axis at its
        local junction temperature.  The result gains a ``resolution``
        dimension just outside ``site``.

        Requires a ``site`` axis *without* explicit junction
        temperatures (the solved fields supply them); like a site scan,
        it carries no ``temperature`` axis.  Coordinates are the grid
        resolutions, in the caller's order (each refinement is solved
        independently).
        """
        if not isinstance(floorplan, Floorplan):
            raise SweepError(
                f"the resolution axis takes a Floorplan, got "
                f"{type(floorplan).__name__}"
            )
        if method not in SOLVE_METHODS:
            raise SweepError(
                f"unknown solve method {method!r}; choose one of {SOLVE_METHODS}"
            )
        values = list(resolutions)
        if not values:
            raise SweepError("resolution axis needs at least one grid resolution")
        coords = []
        for value in values:
            if int(value) != value or int(value) < 2:
                raise SweepError(
                    f"grid resolutions must be integers >= 2, got {value!r}"
                )
            coords.append(int(value))
        duplicates = _duplicate_labels(coords)
        if duplicates:
            raise SweepError(
                f"resolution axis has duplicate resolutions {duplicates}; "
                "coordinates must be unique per axis"
            )
        return cls(
            "resolution",
            tuple(coords),
            payload={
                "floorplan": floorplan,
                "ambient_c": float(ambient_c),
                "parameters": parameters,
                "method": method,
            },
        )

    @classmethod
    def supply(cls, supplies_v: Sequence[float]) -> "Axis":
        """The supply-voltage axis (V), applied via ``with_supply``.

        When combined with a ``sample`` axis the supplies override each
        sample's vdd, giving the full supply x sample cross product.
        """
        values = np.asarray(list(supplies_v), dtype=float)
        if values.ndim != 1 or values.size < 1:
            raise SweepError("supply axis needs a 1-D grid of at least one voltage")
        if np.any(~np.isfinite(values)) or np.any(values <= 0.0):
            raise SweepError("supply voltages must be finite and positive")
        if len(set(values.tolist())) != values.size:
            raise SweepError("supply voltages must be unique")
        return cls("supply", tuple(float(v) for v in values))

    @classmethod
    def width_ratio(
        cls,
        ratios: Sequence[float],
        nmos_width_um: float = 1.05,
        stage_count: int = 5,
    ) -> "Axis":
        """The Wp/Wn sizing axis (the paper's Fig. 2 knob).

        A geometry axis: every ratio rebuilds the inverter cell (via
        :func:`repro.optimize.sizing.build_sized_ring`), so it lowers to
        an outer loop over otherwise fully broadcast sub-tensors rather
        than a broadcast dimension of its own.  Mutually exclusive with
        the ``configuration`` axis.  Ratios must be unique — a duplicate
        would collide as a coordinate label in the result, making
        ``select`` ambiguous and the serialized form lossy.
        """
        values = np.asarray(list(ratios), dtype=float)
        if values.ndim != 1 or values.size < 1:
            raise SweepError("width_ratio axis needs at least one ratio")
        if np.any(~np.isfinite(values)) or np.any(values <= 0.0):
            raise SweepError("width ratios must be finite and positive")
        duplicates = _duplicate_labels([float(r) for r in values])
        if duplicates:
            raise SweepError(
                f"width_ratio axis has duplicate ratios {duplicates}; "
                "coordinates must be unique per axis"
            )
        return cls(
            "width_ratio",
            tuple(float(r) for r in values),
            payload={"nmos_width_um": float(nmos_width_um), "stage_count": int(stage_count)},
        )

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """Lossless plain-data form of a serializable axis.

        The payload is built from plain lists and scalars so it
        round-trips through JSON and :meth:`from_dict` — the form a
        sweep spec travels in through the sweep service
        (:mod:`repro.serve`) and its content-addressed result cache.
        The ``site`` and ``resolution`` axes carry live objects (a
        :class:`~repro.core.sensor_bank.SensorBank`, a
        :class:`~repro.thermal.floorplan.Floorplan`) and have no
        serialized form; they raise :class:`SweepError`.
        """
        if self.name == "technology":
            return {
                "name": "technology",
                "nodes": [_technology_to_dict(node) for node in self.payload],
            }
        if self.name == "temperature":
            return {
                "name": "temperature",
                "coordinates": [float(t) for t in self.coordinates],
            }
        if self.name == "supply":
            return {
                "name": "supply",
                "coordinates": [float(v) for v in self.coordinates],
            }
        if self.name == "width_ratio":
            return {
                "name": "width_ratio",
                "coordinates": [float(r) for r in self.coordinates],
                "nmos_width_um": float(self.payload["nmos_width_um"]),
                "stage_count": int(self.payload["stage_count"]),
            }
        if self.name == "configuration":
            return {
                "name": "configuration",
                "labels": [str(label) for label in self.coordinates],
                "stages": [
                    list(self.payload[label].stages) for label in self.coordinates
                ],
            }
        if self.name == "sample":
            population = self.payload
            if not isinstance(population, TechnologyArray):
                try:
                    population = stack_technologies(list(population))
                except TechnologyError as error:
                    raise SweepError(
                        "this sample axis holds an unstackable technology "
                        "list (samples disagree on the geometry scalars) "
                        "and cannot be serialized; pass a stackable "
                        "population or a TechnologyArray"
                    ) from error
            columns = technology_column_arrays(population)
            return {
                "name": "sample",
                "technology": {
                    "name": str(population.name),
                    "feature_size_um": float(population.feature_size_um),
                    "min_width_um": float(population.min_width_um),
                    "metal_layers": int(population.metal_layers),
                    "extras": [dict(extra) for extra in population.extras],
                },
                "columns": {
                    key: np.asarray(column, dtype=float).reshape(-1).tolist()
                    for key, column in sorted(columns.items())
                },
            }
        raise SweepError(
            f"axis {self.name!r} carries live objects (a sensor bank or "
            f"floorplan) and has no serialized form; a served sweep "
            f"supports the technology, configuration, width_ratio, supply, "
            f"sample and temperature axes"
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Axis":
        """Re-hydrate an axis serialized by :meth:`to_dict`."""
        if not isinstance(payload, Mapping):
            raise SweepError(
                f"Axis.from_dict takes a to_dict() mapping, got "
                f"{type(payload).__name__}"
            )
        name = payload.get("name")
        try:
            if name == "technology":
                nodes = payload["nodes"]
                if not isinstance(nodes, Sequence) or isinstance(nodes, (str, bytes)):
                    raise SweepError(
                        f"serialized technology axis's nodes must be a list, "
                        f"got {type(nodes).__name__}"
                    )
                return cls.technology(
                    [_technology_from_dict(entry) for entry in nodes]
                )
            if name == "temperature":
                return cls.temperature(payload["coordinates"])
            if name == "supply":
                return cls.supply(payload["coordinates"])
            if name == "width_ratio":
                return cls.width_ratio(
                    payload["coordinates"],
                    nmos_width_um=payload["nmos_width_um"],
                    stage_count=payload["stage_count"],
                )
            if name == "configuration":
                labels = [str(label) for label in payload["labels"]]
                stages = payload["stages"]
                if len(labels) != len(stages):
                    raise SweepError(
                        f"configuration axis has {len(labels)} labels but "
                        f"{len(stages)} stage lists"
                    )
                try:
                    configs = [
                        RingConfiguration(tuple(str(s) for s in entry))
                        for entry in stages
                    ]
                except ConfigurationError as error:
                    raise SweepError(str(error)) from error
                return cls.configuration(dict(zip(labels, configs)))
            if name == "sample":
                tech = payload["technology"]
                columns = {
                    key: np.asarray(values, dtype=float).reshape(-1, 1)
                    for key, values in payload["columns"].items()
                }
                try:
                    population = technology_array_from_columns(
                        name=str(tech["name"]),
                        feature_size_um=float(tech["feature_size_um"]),
                        min_width_um=float(tech["min_width_um"]),
                        metal_layers=int(tech["metal_layers"]),
                        extras=tuple(dict(extra) for extra in tech["extras"]),
                        columns=columns,
                    )
                except (TechnologyError, KeyError) as error:
                    raise SweepError(
                        f"invalid serialized sample population: {error}"
                    ) from error
                return cls.sample(population)
        except KeyError as error:
            raise SweepError(
                f"serialized {name!r} axis is missing key {error}"
            ) from None
        raise SweepError(
            f"unknown serialized axis {name!r}; serializable axes are "
            f"technology, configuration, width_ratio, supply, sample and "
            f"temperature"
        )


# --------------------------------------------------------------------------- #
# results
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SweepResult:
    """A labeled ndarray: sweep values plus named axes and coordinates.

    ``dims`` names each dimension of ``values`` (a subset of
    :data:`CANONICAL_AXIS_ORDER`, in that order) and ``coords`` maps
    each name to its coordinate labels, so callers select by meaning
    (``result.select(configuration="5INV", temperature=25.0)``) instead
    of tracking raw dimension positions.
    """

    values: np.ndarray
    dims: Tuple[str, ...]
    coords: Dict[str, Tuple[Any, ...]]
    observable: str = "period"

    def __post_init__(self) -> None:
        values = np.asarray(self.values)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "dims", tuple(self.dims))
        object.__setattr__(self, "coords", dict(self.coords))
        if len(set(self.dims)) != len(self.dims):
            raise SweepError(f"duplicate axis names in {self.dims}")
        if values.ndim != len(self.dims):
            raise SweepError(
                f"values have {values.ndim} dimensions but {len(self.dims)} "
                f"axis names were given"
            )
        if set(self.coords) != set(self.dims):
            raise SweepError("coords must carry exactly one entry per axis name")
        for axis, name in enumerate(self.dims):
            if len(self.coords[name]) != values.shape[axis]:
                raise SweepError(
                    f"axis {name!r} has {values.shape[axis]} entries but "
                    f"{len(self.coords[name])} coordinates"
                )
        for name in self.dims:
            duplicates = _duplicate_labels(self.coords[name])
            if duplicates:
                # Duplicate labels would silently collapse in the
                # coordinate-keyed to_dict tree (later keys overwrite
                # earlier ones, dropping data) and make select() return
                # an arbitrary one of the colliding entries.
                raise SweepError(
                    f"axis {name!r} has duplicate coordinate labels "
                    f"{duplicates}; coordinates must be unique per axis"
                )

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.values.shape

    def axis_index(self, name: str) -> int:
        """Position of a named axis in the value array."""
        try:
            return self.dims.index(name)
        except ValueError:
            raise SweepError(
                f"result has no axis {name!r}; axes are {self.dims}"
            ) from None

    def coordinates(self, name: str) -> Tuple[Any, ...]:
        """Coordinate labels of a named axis."""
        self.axis_index(name)
        return tuple(self.coords[name])

    def item(self) -> float:
        """The single value of a fully selected (size-1) result."""
        if self.values.size != 1:
            raise SweepError(
                f"item() needs a single-element result, got shape {self.shape}"
            )
        return float(self.values.reshape(()))

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    def _locate(self, name: str, label: Any) -> int:
        labels = self.coords[name]
        for index, candidate in enumerate(labels):
            if candidate == label:
                return index
        if isinstance(label, (int, float)) and not isinstance(label, bool):
            numeric = [
                index
                for index, candidate in enumerate(labels)
                if isinstance(candidate, (int, float))
                and np.isclose(float(candidate), float(label), rtol=1e-12, atol=0.0)
            ]
            if len(numeric) > 1:
                # Near-duplicate float coordinates (e.g. a refinement
                # axis converging on one value) make "the first isclose
                # match" an arbitrary choice; force the caller to
                # disambiguate by position instead of silently picking
                # index 0.
                matches = [labels[index] for index in numeric]
                raise SweepError(
                    f"label {label!r} on axis {name!r} is ambiguous: it is "
                    f"within tolerance of coordinates {matches} at positions "
                    f"{numeric}; select by position with isel() instead"
                )
            if numeric:
                return numeric[0]
        raise SweepError(
            f"axis {name!r} has no coordinate {label!r}; coordinates are {labels}"
        )

    def select(self, **selectors: Any) -> "SweepResult":
        """Select by coordinate label.

        A scalar label drops the axis; a list/tuple of labels keeps the
        axis restricted to that subset (in the requested order).
        """
        result = self
        for name, label in selectors.items():
            result.axis_index(name)
            if isinstance(label, (list, tuple)):
                indices = [result._locate(name, entry) for entry in label]
                result = result._take(name, indices, keep=True)
            else:
                result = result._take(name, [result._locate(name, label)], keep=False)
        return result

    def isel(self, **indexers: Union[int, Sequence[int]]) -> "SweepResult":
        """Select by integer position (same drop/keep rules as :meth:`select`)."""
        result = self
        for name, index in indexers.items():
            result.axis_index(name)
            if isinstance(index, (list, tuple)):
                result = result._take(name, [int(i) for i in index], keep=True)
            else:
                result = result._take(name, [int(index)], keep=False)
        return result

    def _take(self, name: str, indices: List[int], keep: bool) -> "SweepResult":
        axis = self.axis_index(name)
        labels = self.coords[name]
        for index in indices:
            if not -len(labels) <= index < len(labels):
                raise SweepError(
                    f"index {index} outside axis {name!r} (size {len(labels)})"
                )
        taken = np.take(self.values, indices, axis=axis)
        coords = dict(self.coords)
        if keep:
            coords[name] = tuple(labels[index] for index in indices)
            return replace(self, values=taken, coords=coords)
        coords.pop(name)
        dims = tuple(d for d in self.dims if d != name)
        return replace(
            self, values=np.squeeze(taken, axis=axis), dims=dims, coords=coords
        )

    def squeeze(self) -> "SweepResult":
        """Drop every size-1 axis (labels included)."""
        keep = [i for i, name in enumerate(self.dims) if self.values.shape[i] != 1]
        dims = tuple(self.dims[i] for i in keep)
        coords = {name: self.coords[name] for name in dims}
        values = self.values.reshape([self.values.shape[i] for i in keep])
        return replace(self, values=values, dims=dims, coords=coords)

    def to_tree(self) -> Any:
        """Nested plain-dict view keyed by coordinates (floats at the leaves).

        Coordinate labels become dictionary keys, so uniqueness (enforced
        at construction) is what keeps this view lossless: a duplicate
        label would silently overwrite its sibling's subtree.
        """
        for name in self.dims:
            duplicates = _duplicate_labels(self.coords[name])
            if duplicates:  # pragma: no cover - unreachable post-validation
                raise SweepError(
                    f"axis {name!r} has duplicate coordinate labels "
                    f"{duplicates}; the coordinate-keyed view would drop data"
                )
        if not self.dims:
            return float(self.values.reshape(()))
        name = self.dims[0]
        return {
            label: self.isel(**{name: index}).to_tree()
            for index, label in enumerate(self.coords[name])
        }

    #: Version tag of the :meth:`to_dict` serialization, bumped on any
    #: incompatible change so cached artifacts can be rejected cleanly.
    SCHEMA_VERSION = 1

    def to_dict(self) -> Dict[str, Any]:
        """Lossless plain-data form (dims, coords, values, observable).

        The payload is built from plain lists and scalars, so it
        round-trips through JSON and :meth:`from_dict` rebuilds an
        identical result — the serialization tile results and cached
        sweep artifacts travel as.  Duplicate coordinate labels raise
        :class:`SweepError` (they cannot re-hydrate losslessly); use
        :meth:`to_tree` for the coordinate-keyed nested view.
        """
        for name in self.dims:
            duplicates = _duplicate_labels(self.coords[name])
            if duplicates:  # pragma: no cover - unreachable post-validation
                raise SweepError(
                    f"axis {name!r} has duplicate coordinate labels "
                    f"{duplicates}; the serialized result would drop data"
                )
        return {
            "version": self.SCHEMA_VERSION,
            "observable": self.observable,
            "dims": list(self.dims),
            "coords": {name: list(self.coords[name]) for name in self.dims},
            "dtype": str(self.values.dtype),
            "values": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepResult":
        """Re-hydrate a result serialized by :meth:`to_dict`."""
        if not isinstance(payload, Mapping):
            raise SweepError(
                f"from_dict takes a to_dict() mapping, got {type(payload).__name__}"
            )
        missing = [
            key
            for key in ("version", "observable", "dims", "coords", "values")
            if key not in payload
        ]
        if missing:
            raise SweepError(f"serialized sweep result is missing {missing}")
        version = payload["version"]
        if version != cls.SCHEMA_VERSION:
            raise SweepError(
                f"serialized sweep result has version {version!r}; this "
                f"build reads version {cls.SCHEMA_VERSION}"
            )
        dims = tuple(payload["dims"])
        coords = {name: tuple(labels) for name, labels in payload["coords"].items()}
        values = np.asarray(payload["values"], dtype=payload.get("dtype", float))
        return cls(
            values=values,
            dims=dims,
            coords=coords,
            observable=payload["observable"],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extent = ", ".join(
            f"{name}={len(self.coords[name])}" for name in self.dims
        )
        return f"SweepResult({self.observable}; {extent})"


# --------------------------------------------------------------------------- #
# the builder and the planner
# --------------------------------------------------------------------------- #


class Sweep:
    """Builder for a declarative sweep over named axes.

    Parameters
    ----------
    technology:
        Base technology (defaults to the library's, or the paper's
        0.35 um process when nothing else pins it down).
    library:
        Cell library the rings draw their stages from (the default X1
        library of the technology when omitted).
    configuration:
        Single ring configuration (a
        :class:`~repro.oscillator.config.RingConfiguration` or a
        parseable string) for sweeps without a ``configuration`` axis.
    ring:
        A fully built :class:`~repro.oscillator.ring.RingOscillator` to
        sweep as-is (wins over technology/library/configuration).
    wire_length_um / external_load_f / tap_stage:
        Ring construction parameters used when the sweep builds rings
        itself.
    readout:
        Counter readout used by the ``code`` observable for sweeps
        without a site axis (a site axis brings its bank's readout).

    Compose axes with :meth:`over`, pick an observable with
    :meth:`observe` (``"period"`` by default) and evaluate with
    :meth:`run`.  The builder mutates and returns itself, so the usual
    form is one fluent chain.
    """

    def __init__(
        self,
        technology: Optional[Technology] = None,
        library: Optional[CellLibrary] = None,
        configuration: Optional[Union[RingConfiguration, str]] = None,
        ring: Optional[RingOscillator] = None,
        wire_length_um: float = 2.0,
        external_load_f: float = 0.0,
        tap_stage: Optional[int] = None,
        readout: ReadoutConfig = ReadoutConfig(),
    ) -> None:
        self._technology = technology
        self._library = library
        if isinstance(configuration, str):
            configuration = RingConfiguration.parse(configuration)
        self._configuration = configuration
        self._ring = ring
        self._wire_length_um = float(wire_length_um)
        self._external_load_f = float(external_load_f)
        self._tap_stage = tap_stage
        self._readout = readout
        self._axes: Dict[str, Axis] = {}
        self._observable = "period"

    def over(self, *axes: Axis) -> "Sweep":
        """Add one or more named axes to the sweep."""
        for axis in axes:
            if not isinstance(axis, Axis):
                raise SweepError(f"over() takes Axis objects, got {type(axis).__name__}")
            if axis.name in self._axes:
                raise SweepError(f"axis {axis.name!r} was already added to this sweep")
            self._axes[axis.name] = axis
        return self

    def observe(self, observable: str) -> "Sweep":
        """Choose the observable (one of :data:`OBSERVABLES`)."""
        if observable not in OBSERVABLES:
            raise SweepError(
                f"unknown observable {observable!r}; choose one of {OBSERVABLES}"
            )
        self._observable = observable
        return self

    #: Version tag of the :meth:`to_dict` sweep-spec serialization,
    #: bumped on any incompatible change so a service (or a cached
    #: artifact reader) can reject stale payloads cleanly instead of
    #: misinterpreting them.  Version 2 made technology references
    #: content-addressed: the base technology and technology-axis nodes
    #: serialize as ``{name, digest}`` (inline parameter bundles for
    #: unregistered nodes), so canonical cache keys change whenever a
    #: node's *parameters* change — not just its name.
    SCHEMA_VERSION = 2

    def to_dict(self) -> Dict[str, Any]:
        """Lossless plain-data form of a serializable sweep spec.

        The payload is built from plain lists and scalars, so it
        round-trips through JSON and :meth:`from_dict` rebuilds a sweep
        whose :meth:`run` is bit-identical to this one's — the request
        format of the sweep service (:mod:`repro.serve`), which
        content-hashes the canonicalized payload to key its result
        cache.  Serializable sweeps are those declared from data: a
        base technology (a registered node travels as its
        content-addressed ``{name, digest}`` reference, an unregistered
        one inlines its full parameter bundle), a parseable base
        configuration, and the technology / configuration / width_ratio
        / supply / sample / temperature axes.  A ``ring=`` or
        ``library=`` base and the ``site`` / ``resolution`` axes carry
        live objects and raise :class:`SweepError`.
        """
        if self._ring is not None:
            raise SweepError(
                "a ring= base carries a live RingOscillator and cannot be "
                "serialized; pass technology= plus configuration= instead"
            )
        if self._library is not None:
            raise SweepError(
                "a library= base carries a live CellLibrary and cannot be "
                "serialized; pass technology= (the default library is "
                "rebuilt on the far side)"
            )
        technology = None
        if self._technology is not None:
            technology = _technology_to_dict(self._technology)
        return {
            "version": self.SCHEMA_VERSION,
            "observable": self._observable,
            "base": {
                "technology": technology,
                "configuration": (
                    self._configuration.label()
                    if self._configuration is not None
                    else None
                ),
                "wire_length_um": float(self._wire_length_um),
                "external_load_f": float(self._external_load_f),
                "tap_stage": (
                    int(self._tap_stage) if self._tap_stage is not None else None
                ),
                "readout": {
                    "reference_clock_hz": float(self._readout.reference_clock_hz),
                    "window_cycles": int(self._readout.window_cycles),
                    "counter_bits": int(self._readout.counter_bits),
                },
            },
            "axes": [
                self._axes[name].to_dict()
                for name in CANONICAL_AXIS_ORDER
                if name in self._axes
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Sweep":
        """Re-hydrate a sweep spec serialized by :meth:`to_dict`.

        Technology references are verified against this process's
        registry by content digest; a name the registry does not know
        (with no inline parameters) or knows under a different digest
        raises :class:`TechnologyMismatchError` rather than silently
        evaluating whatever this process calls that name.
        """
        if not isinstance(payload, Mapping):
            raise SweepError(
                f"Sweep.from_dict takes a to_dict() mapping, got "
                f"{type(payload).__name__}"
            )
        missing = [
            key for key in ("version", "observable", "base", "axes") if key not in payload
        ]
        if missing:
            raise SweepError(f"serialized sweep spec is missing {missing}")
        version = payload["version"]
        if version != cls.SCHEMA_VERSION:
            raise SweepError(
                f"serialized sweep spec has version {version!r}; this "
                f"build reads version {cls.SCHEMA_VERSION}"
            )
        base = payload["base"]
        if not isinstance(base, Mapping):
            raise SweepError(
                f"serialized sweep spec's base must be a mapping, got "
                f"{type(base).__name__}"
            )
        technology = None
        if base.get("technology") is not None:
            technology = _technology_from_dict(base["technology"])
        try:
            readout = ReadoutConfig(**dict(base.get("readout") or {}))
        except (TypeError, TechnologyError) as error:
            raise SweepError(f"invalid serialized readout: {error}") from error
        try:
            sweep = cls(
                technology=technology,
                configuration=base.get("configuration"),
                wire_length_um=base.get("wire_length_um", 2.0),
                external_load_f=base.get("external_load_f", 0.0),
                tap_stage=base.get("tap_stage"),
                readout=readout,
            )
        except ConfigurationError as error:
            raise SweepError(str(error)) from error
        axes = payload["axes"]
        if not isinstance(axes, Sequence) or isinstance(axes, (str, bytes)):
            raise SweepError(
                f"serialized sweep spec's axes must be a list, got "
                f"{type(axes).__name__}"
            )
        for axis_payload in axes:
            sweep.over(Axis.from_dict(axis_payload))
        return sweep.observe(payload["observable"])

    def plan(self) -> "SweepPlan":
        """Validate the axis combination and freeze the lowering plan."""
        axes = tuple(
            self._axes[name] for name in CANONICAL_AXIS_ORDER if name in self._axes
        )
        if "technology" in self._axes:
            if (
                self._technology is not None
                or self._library is not None
                or self._ring is not None
            ):
                raise SweepError(
                    "a technology axis supplies the node per coordinate; "
                    "drop the technology=/library=/ring= base"
                )
            if "site" in self._axes:
                raise SweepError(
                    "the site axis's bank is built in one technology and "
                    "cannot be combined with a technology axis"
                )
            if "sample" in self._axes:
                raise SweepError(
                    "a sample axis holds a concrete Monte-Carlo population "
                    "drawn from one node and cannot be combined with a "
                    "technology axis; draw per-node populations and sweep "
                    "them as separate runs"
                )
        site_axis = self._axes.get("site")
        resolution_axis = self._axes.get("resolution")
        if resolution_axis is not None:
            if site_axis is None:
                raise SweepError(
                    "the resolution axis solves the die's thermal field and "
                    "needs a site axis (a sensor bank) to read it; add "
                    "Axis.site(bank)"
                )
            if site_axis.payload["junction_temperatures_c"] is not None:
                raise SweepError(
                    "a resolution axis solves each refinement's junction "
                    "temperatures itself; drop the site axis's explicit "
                    "junction_temperatures_c"
                )
        site_scan = site_axis is not None and (
            site_axis.payload["junction_temperatures_c"] is not None
            or resolution_axis is not None
        )
        if site_axis is not None:
            for other in ("configuration", "width_ratio"):
                if other in self._axes:
                    raise SweepError(
                        f"the site axis fixes the ring design through its "
                        f"bank and cannot be combined with a {other} axis"
                    )
            if self._ring is not None or self._configuration is not None:
                raise SweepError(
                    "a site axis brings its bank's ring design; drop the "
                    "ring=/configuration= base"
                )
            bank = site_axis.payload["bank"]
            if (
                self._technology is not None
                and bank.technology is not self._technology
                and bank.technology.name != self._technology.name
            ):
                raise SweepError(
                    f"the site axis's bank is built in technology "
                    f"{bank.technology.name!r} but technology= is "
                    f"{self._technology.name!r}; the sweep would mix the two"
                )
        if site_scan:
            if "temperature" in self._axes:
                raise SweepError(
                    "a site axis with junction temperatures (explicit, or "
                    "solved per refinement by a resolution axis) evaluates "
                    "every site at its own temperature and cannot be "
                    "combined with a temperature axis; drop one of the two"
                )
            if self._observable in _ENDPOINT_OBSERVABLES:
                raise SweepError(
                    f"observable {self._observable!r} fits the sweep's "
                    "endpoint temperatures and needs a temperature axis; a "
                    "site scan (junction temperatures or a resolution axis) "
                    "has none"
                )
        elif "temperature" not in self._axes:
            axes = axes + (Axis.temperature(default_temperature_grid()),)
        if "configuration" in self._axes and "width_ratio" in self._axes:
            raise SweepError(
                "the configuration and width_ratio axes both define the ring "
                "and cannot be combined in one sweep"
            )
        if "width_ratio" in self._axes and self._ring is not None:
            raise SweepError("a width_ratio axis rebuilds the ring; drop the ring= base")
        if "configuration" in self._axes and self._ring is not None:
            # Accepting the ring would silently drop its configuration,
            # wire length and tap load in favour of the Sweep defaults.
            raise SweepError(
                "a configuration axis builds its own rings; pass library= "
                "(plus wire_length_um/external_load_f/tap_stage) instead of ring="
            )
        if "configuration" in self._axes and self._configuration is not None:
            raise SweepError(
                "this sweep has both a base configuration= and a "
                "configuration axis; the base would be silently ignored — "
                "drop one of the two"
            )
        if (
            self._technology is not None
            and self._library is not None
            and self._library.technology is not self._technology
            and self._library.technology.name != self._technology.name
        ):
            raise SweepError(
                f"library= is built in technology "
                f"{self._library.technology.name!r} but technology= is "
                f"{self._technology.name!r}; the sweep would mix the two — "
                "pass one of them"
            )
        return SweepPlan(
            axes=axes,
            observable=self._observable,
            technology=self._technology,
            library=self._library,
            configuration=self._configuration,
            ring=self._ring,
            wire_length_um=self._wire_length_um,
            external_load_f=self._external_load_f,
            tap_stage=self._tap_stage,
            readout=self._readout,
        )

    def run(
        self,
        *,
        executor: Any = None,
        max_tile_elements: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> SweepResult:
        """Plan and evaluate the sweep (see :meth:`SweepPlan.execute`)."""
        return self.plan().execute(
            executor=executor,
            max_tile_elements=max_tile_elements,
            memory_budget_bytes=memory_budget_bytes,
        )

    def reduce(
        self,
        reducers: Any,
        *,
        executor: Any = None,
        max_tile_elements: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> Any:
        """Plan and stream the sweep through reducers (:meth:`SweepPlan.reduce`)."""
        return self.plan().reduce(
            reducers,
            executor=executor,
            max_tile_elements=max_tile_elements,
            memory_budget_bytes=memory_budget_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = [name for name in CANONICAL_AXIS_ORDER if name in self._axes]
        return f"Sweep(axes={names}, observable={self._observable!r})"


@dataclass(frozen=True)
class SweepPlan:
    """A validated sweep lowered onto concrete broadcast dimensions.

    Produced by :meth:`Sweep.plan`.  ``axes`` holds the named axes in
    canonical order (with the implicit default temperature axis
    appended when none was declared); :meth:`execute` performs the
    lowering:

    * ``technology`` loops the whole inner sweep per node (each node is
      a complete evaluation context — its own default library and rings
      — so per-node slices are bitwise identical to running the inner
      sweep against that node directly),
    * ``supply`` x ``sample`` stack into one struct-of-arrays
      population (supply-major, so the flat sample axis un-reshapes to
      ``(supply, sample)``),
    * ``configuration`` lowers onto a
      :class:`~repro.oscillator.bank.ConfigurationBank` single
      broadcast,
    * ``width_ratio`` loops ring builds around the inner broadcast,
    * ``resolution`` loops steady thermal solves (one cached
      :class:`~repro.thermal.operator.ThermalOperator` entry per grid
      density) around the site axis's banked scan,
    * a plain ring sweep lowers straight onto
      :meth:`~repro.oscillator.ring.RingOscillator.period_series` /
      :meth:`~repro.oscillator.ring.RingOscillator.period_matrix`.
    """

    axes: Tuple[Axis, ...]
    observable: str
    technology: Optional[Technology]
    library: Optional[CellLibrary]
    configuration: Optional[RingConfiguration]
    ring: Optional[RingOscillator]
    wire_length_um: float
    external_load_f: float
    tap_stage: Optional[int]
    readout: ReadoutConfig = ReadoutConfig()

    def axis(self, name: str) -> Optional[Axis]:
        for axis in self.axes:
            if axis.name == name:
                return axis
        return None

    # ------------------------------------------------------------------ #
    # base-context resolution
    # ------------------------------------------------------------------ #

    def _base_technology(self) -> Technology:
        if self.ring is not None:
            return self.ring.technology
        if self.technology is not None:
            return self.technology
        if self.library is not None:
            return self.library.technology
        site_axis = self.axis("site")
        if site_axis is not None:
            # The documented Sweep() site-axis form pins nothing else
            # down, so the bank's own technology is the base context
            # (e.g. for a supply axis stacked on top of the bank).
            return site_axis.payload["bank"].technology
        from ..tech.libraries import CMOS035

        return CMOS035

    def _base_library(self) -> CellLibrary:
        if self.ring is not None:
            return self.ring.library
        if self.library is not None:
            return self.library
        site_axis = self.axis("site")
        if site_axis is not None:
            return site_axis.payload["bank"].library
        return default_library(self._base_technology())

    def _base_ring(self) -> RingOscillator:
        if self.ring is not None:
            return self.ring
        if self.configuration is None:
            raise SweepError(
                "this sweep has no configuration axis and no base "
                "configuration/ring to evaluate; pass configuration= or ring= "
                "to Sweep, or add Axis.configuration(...)"
            )
        return RingOscillator(
            self._base_library(),
            self.configuration,
            wire_length_um=self.wire_length_um,
            external_load_f=self.external_load_f,
            tap_stage=self.tap_stage,
        )

    # ------------------------------------------------------------------ #
    # population lowering (supply x sample)
    # ------------------------------------------------------------------ #

    def _lower_population(self):
        """The stacked technology population of the supply/sample axes.

        Returns ``None`` when neither axis is present.  With both, the
        cross product is supply-major: flat index ``v * S + s``.
        """
        supply_axis = self.axis("supply")
        sample_axis = self.axis("sample")
        if supply_axis is None and sample_axis is None:
            return None
        if supply_axis is None:
            return sample_axis.payload
        supplies = np.asarray(supply_axis.coordinates, dtype=float)
        if sample_axis is None:
            return stack_technologies(
                [self._base_technology().with_supply(float(v)) for v in supplies]
            )
        samples = sample_axis.payload
        if not isinstance(samples, TechnologyArray):
            try:
                samples = stack_technologies(list(samples))
            except TechnologyError:
                # Unstackable populations (samples disagreeing on the
                # geometry scalars) keep the documented per-sample-loop
                # fallback: hand the evaluators a plain supply-major
                # technology list instead of a stacked cross product.
                return [
                    sample.with_supply(float(supply))
                    for supply in supplies
                    for sample in sample_axis.payload
                ]
        return samples.tiled(supplies.size).with_supply(
            np.repeat(supplies, len(samples))
        )

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def _single_ring_tensor(
        self, ring: RingOscillator, population, temps: np.ndarray
    ) -> np.ndarray:
        if population is None:
            return np.asarray(ring.period_series(temps))
        return np.asarray(ring.period_matrix(population, temps))

    def _vdd2_switched_cap(self, ring: RingOscillator, population) -> np.ndarray:
        """``Vdd^2 * C_switched`` of a ring, per flat population sample.

        The ``power`` observable's load-independent factor: the ring's
        dynamic power is this divided by the period.  Shapes: a scalar
        without a population, an ``(S, 1)`` column against a stacked
        one, and a per-sample loop for the unstackable-list fallback.
        """
        def factor(bound: RingOscillator):
            return (
                np.asarray(bound.technology.vdd) ** 2 * bound.switched_capacitance()
            )

        if population is None:
            return np.asarray(factor(ring))
        if not isinstance(population, TechnologyArray):
            return np.asarray(
                [float(factor(ring.rebind(sample))) for sample in population]
            ).reshape(-1, 1)
        return np.asarray(factor(ring.rebind(population))).reshape(-1, 1)

    def execute(
        self,
        *,
        executor: Any = None,
        max_tile_elements: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> SweepResult:
        """Evaluate the plan and label the result.

        With no arguments (and no ``REPRO_SWEEP_EXECUTOR`` environment
        override) this is the dense in-memory single-pass evaluation —
        the reference semantics every other path must bit-match.

        ``executor`` selects a tiled execution backend (an
        :class:`~repro.engine.executors.Executor` instance, or one of
        the names ``"serial"`` / ``"process"`` / ``"memmap"``); the
        plan is then partitioned by :func:`~repro.engine.tiling.plan_tiles`
        into bounded-memory chunks along the cheapest-to-split axes
        (``sample``, then ``temperature``) and the tiles are evaluated
        through the backend.  ``max_tile_elements`` /
        ``memory_budget_bytes`` bound each tile's dense sub-tensor;
        giving either without an executor runs the tiles serially
        in-process.  Tiled results are bitwise identical to the dense
        pass (each tile is an elementwise slice of the same broadcast).
        """
        from .executors import resolve_executor, run_plan

        resolved = resolve_executor(executor)
        if (
            resolved is None
            and max_tile_elements is None
            and memory_budget_bytes is None
        ):
            return self._execute_dense()
        return run_plan(
            self,
            executor=resolved,
            max_tile_elements=max_tile_elements,
            memory_budget_bytes=memory_budget_bytes,
        )

    def reduce(
        self,
        reducers: Any,
        *,
        executor: Any = None,
        max_tile_elements: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> Any:
        """Stream the sweep through reducers without keeping the tensor.

        ``reducers`` is a single streaming reducer (see
        :mod:`repro.engine.reducers`) or a mapping of names to reducers.
        Tiles are evaluated through the chosen backend and fed to every
        reducer as they complete; the full result tensor is never
        materialized — peak memory is one tile plus the reducers' own
        state.  Returns the finalized reduction (or a dict of them,
        matching the mapping's keys).
        """
        from .executors import resolve_executor, run_plan

        return run_plan(
            self,
            executor=resolve_executor(executor),
            max_tile_elements=max_tile_elements,
            memory_budget_bytes=memory_budget_bytes,
            reducers=reducers,
            keep_values=False,
        )

    def _execute_dense(self) -> SweepResult:
        """The dense single-broadcast evaluation (the oracle semantics)."""
        tech_axis = self.axis("technology")
        if tech_axis is not None:
            # Outermost per-node loop: each node re-enters this method
            # as the sub-plan's technology= base, so a node's slice takes
            # exactly the code path (and produces bitwise the numbers) of
            # an equivalent single-node sweep.
            inner_axes = tuple(
                axis for axis in self.axes if axis.name != "technology"
            )
            slices = [
                replace(self, axes=inner_axes, technology=node)
                ._execute_dense()
                .values
                for node in tech_axis.payload
            ]
            coords = {axis.name: tuple(axis.coordinates) for axis in self.axes}
            return SweepResult(
                values=np.stack(slices),
                dims=tuple(axis.name for axis in self.axes),
                coords=coords,
                observable=self.observable,
            )
        temp_axis = self.axis("temperature")
        temps = (
            np.asarray(temp_axis.coordinates, dtype=float)
            if temp_axis is not None
            else None
        )
        population = self._lower_population()
        config_axis = self.axis("configuration")
        ratio_axis = self.axis("width_ratio")
        site_axis = self.axis("site")
        need_power = self.observable == "power"
        vdd2cap: Optional[np.ndarray] = None

        if site_axis is not None:
            sensor_bank: SensorBank = site_axis.payload["bank"]
            site_temps = site_axis.payload["junction_temperatures_c"]
            resolution_axis = self.axis("resolution")
            if need_power:
                vdd2cap = self._vdd2_switched_cap(sensor_bank.ring, population)
            if resolution_axis is not None:
                # Grid-refinement scan: one steady thermal solve per
                # resolution (each through its own cached ThermalOperator
                # entry), every site read at its solved local junction
                # temperature.
                spec = resolution_axis.payload
                xs, ys = sensor_bank.positions()
                slices = []
                for r in resolution_axis.coordinates:
                    power_map = PowerMap.from_floorplan(
                        spec["floorplan"], nx=int(r), ny=int(r)
                    )
                    grid = ThermalGrid.for_power_map(power_map, spec["parameters"])
                    field = ThermalOperator.for_grid(
                        grid, spec["method"]
                    ).solve_steady_state(power_map, spec["ambient_c"])
                    truths = field.sample_points(xs, ys)
                    slices.append(
                        sensor_bank.period_tensor(truths, technologies=population)
                    )
                tensor = np.stack(slices)
                if need_power and vdd2cap.ndim == 2:
                    # (S, 1) population columns broadcast over the flat
                    # trailing sample axis of the (R, site, S) stack.
                    vdd2cap = vdd2cap.reshape(-1)
            elif site_temps is not None:
                # Scan mode: every site at its own junction temperature;
                # one broadcast, no temperature dimension in the result.
                tensor = sensor_bank.period_tensor(site_temps, technologies=population)
                if need_power and vdd2cap.ndim == 2:
                    vdd2cap = vdd2cap.reshape(1, -1)
            else:
                # Characterisation mode: the sites share one ring
                # design, so the shared-grid tensor broadcasts along the
                # site dimension.
                inner = self._single_ring_tensor(sensor_bank.ring, population, temps)
                tensor = np.broadcast_to(
                    inner, (sensor_bank.site_count,) + inner.shape
                )
        elif config_axis is not None:
            bank = ConfigurationBank(
                self._base_library(),
                config_axis.payload,
                wire_length_um=self.wire_length_um,
                external_load_f=self.external_load_f,
                tap_stage=self.tap_stage,
            )
            tensor = bank.period_tensor(temps, technologies=population)
            if need_power:
                per_config = [
                    self._vdd2_switched_cap(ring, population) for ring in bank.rings()
                ]
                vdd2cap = np.stack(per_config)
                if vdd2cap.ndim == 1:  # scalars per configuration
                    vdd2cap = vdd2cap.reshape(-1, 1)
        elif ratio_axis is not None:
            from ..optimize.sizing import build_sized_ring

            technology = self._base_technology()
            rings = [
                build_sized_ring(
                    technology,
                    float(ratio),
                    nmos_width_um=ratio_axis.payload["nmos_width_um"],
                    stage_count=ratio_axis.payload["stage_count"],
                )
                for ratio in ratio_axis.coordinates
            ]
            tensor = np.stack(
                [self._single_ring_tensor(ring, population, temps) for ring in rings]
            )
            if need_power:
                vdd2cap = np.stack(
                    [self._vdd2_switched_cap(ring, population) for ring in rings]
                )
                if vdd2cap.ndim == 1:
                    vdd2cap = vdd2cap.reshape(-1, 1)
        else:
            ring = self._base_ring()
            tensor = self._single_ring_tensor(ring, population, temps)
            if need_power:
                vdd2cap = self._vdd2_switched_cap(ring, population)

        # Context-bearing observables apply on the flat tensor (the
        # supply-major population axis is still one dimension here, so
        # the (S, 1) power columns line up without reshaping).
        if self.observable == "code":
            counter = (
                site_axis.payload["bank"].counter
                if site_axis is not None
                else PeriodCounter(self.readout)
            )
            tensor, _saturated = counter.convert_batch(tensor)
        elif need_power:
            tensor = vdd2cap / tensor

        # Un-flatten the supply-major population axis into its named
        # dimensions and collect the final canonical shape.
        dims: List[str] = []
        shape: List[int] = []
        for axis in self.axes:
            dims.append(axis.name)
            shape.append(len(axis))
        tensor = np.asarray(tensor).reshape(shape)

        coords = {axis.name: tuple(axis.coordinates) for axis in self.axes}
        values = _apply_observable(self.observable, tensor, temps)
        return SweepResult(
            values=values,
            dims=tuple(dims),
            coords=coords,
            observable=self.observable,
        )


# --------------------------------------------------------------------------- #
# observables
# --------------------------------------------------------------------------- #


def _apply_observable(
    name: str, tensor: np.ndarray, temps: Optional[np.ndarray]
) -> np.ndarray:
    """Map the raw period tensor (temperature last) to the observable.

    ``code`` and ``power`` carry context (a counter, the switched
    capacitance) and are applied inside :meth:`SweepPlan.execute`; they
    arrive here already evaluated, as does the raw ``period``.
    """
    if name in ("period", "code", "power"):
        return tensor
    if name == "frequency":
        return 1.0 / tensor
    if temps is None or temps.size < 2:
        raise SweepError(
            f"observable {name!r} fits the sweep's endpoint temperatures and "
            "needs a temperature axis with at least two points"
        )
    # The endpoints are the extreme *temperatures*, not the grid's first
    # and last positions — the temperature axis documents its ordering
    # as presentation-only, so an unsorted grid must not change the
    # metric.  (For the usual ascending grids these coincide, matching
    # repro.analysis.linearity.nonlinearity row for row.)
    index_low = int(np.argmin(temps))
    index_high = int(np.argmax(temps))
    t_low = temps[index_low]
    t_high = temps[index_high]
    if t_high == t_low:
        raise SweepError(
            f"observable {name!r} needs at least two distinct temperatures"
        )
    low = tensor[..., index_low : index_low + 1]
    high = tensor[..., index_high : index_high + 1]
    span = high - low
    if np.any(span == 0.0):
        raise SweepError(
            "flat temperature response: the endpoint periods are equal, so "
            f"observable {name!r} is undefined"
        )
    if name in ("transfer_c", "calibration_error_c"):
        # The per-row two-point calibration through the endpoint
        # temperatures — the line an actually calibrated sensor realises.
        slope = (t_high - t_low) / span
        estimate = t_low + slope * (tensor - low)
        if name == "transfer_c":
            return estimate
        return estimate - temps
    if name == "nonlinearity_percent":
        # The paper's Fig. 2 / Fig. 3 y-axis: deviation from the
        # endpoint line in percent of the full-scale period span.
        slope = span / (t_high - t_low)
        line = low + slope * (temps - t_low)
        return (tensor - line) / np.abs(span) * 100.0
    raise SweepError(f"unknown observable {name!r}")  # pragma: no cover
