"""repro — Smart ring-oscillator temperature sensor for cell-based ICs.

A from-scratch Python reproduction of *"Smart Temperature Sensor for
Thermal Testing of Cell-Based ICs"* (Bota, Rosales, Segura — DATE 2005):
a built-in temperature sensor made only of standard library gates, whose
ring-oscillator period tracks junction temperature, linearised by
choosing the right mix of cells, and wrapped in a digital smart unit
(counter readout, enable/busy control, multiplexed thermal mapping).

Subpackages
-----------

``repro.tech``
    Technology parameters and their temperature dependence, process
    corners, scaling.
``repro.devices``
    MOSFET (alpha-power law), diode and passive device models.
``repro.circuit``
    Small MNA circuit simulator (DC + transient) and waveform analysis.
``repro.delay``
    Analytical alpha-power gate-delay and load models.
``repro.cells``
    Standard-cell library (INV/NAND/NOR/BUF), characterisation, Liberty
    export.
``repro.oscillator``
    Ring-oscillator construction, configurations, temperature response.
``repro.core``
    The paper's contribution: the smart sensor, readout, controller,
    calibration, multiplexer and thermal monitor.
``repro.thermal``
    Die floorplan, power maps, compact thermal RC model and solvers.
``repro.analysis``
    Non-linearity, sensitivity, resolution and Monte-Carlo analysis.
``repro.baselines``
    Diode (delta-VBE) and FPGA-style ring baselines.
``repro.optimize``
    Transistor-sizing sweep and cell-mix search.
``repro.engine``
    Vectorized batch evaluation of rings, sensors and Monte-Carlo
    populations.
``repro.serve``
    The engine as a persistent network service: NDJSON over asyncio
    TCP, content-addressed result caching, micro-batched point
    queries (``repro-serve`` / ``python -m repro.serve``).
``repro.experiments``
    One entry point per paper figure / claim (used by benchmarks).

Quick start
-----------

>>> from repro import CMOS035, RingConfiguration, SmartTemperatureSensor
>>> sensor = SmartTemperatureSensor.from_configuration(
...     CMOS035, RingConfiguration.parse("2INV+3NAND2"))
>>> _ = sensor.calibrate_two_point(-40.0, 125.0)
>>> reading = sensor.measure(85.0)
>>> abs(reading.temperature_estimate_c - 85.0) < 2.0
True

Performance & batch evaluation
------------------------------

The whole analytical stack broadcasts over ndarray temperature grids
*and* over stacked leading axes: a Monte-Carlo or corner population
stored as a struct-of-arrays :class:`repro.tech.TechnologyArray` flows
through the device models (:mod:`repro.tech.temperature`), the
alpha-power delay model (:mod:`repro.delay.alpha_power`), cell delays
(:meth:`repro.cells.StandardCell.delays`) and the ring period
(:meth:`repro.oscillator.RingOscillator.period_series`) as one
broadcast, and many ring configurations stack into a
:class:`repro.oscillator.ConfigurationBank` so the Fig. 3 x
Monte-Carlo cross product evaluates as a single
``(config, sample, temperature)`` broadcast.

Workloads are declared on named axes through the sweep API
(:mod:`repro.engine.sweep`) — compose :class:`repro.engine.Axis`
objects over a base context, pick an observable, and get a labeled
:class:`repro.engine.SweepResult` back:

>>> import numpy as np
>>> from repro import Axis, CMOS035, PAPER_FIG3_CONFIGURATIONS, Sweep
>>> result = (
...     Sweep(technology=CMOS035)
...     .over(Axis.configuration(PAPER_FIG3_CONFIGURATIONS))
...     .over(Axis.temperature(np.linspace(-50.0, 150.0, 41)))
...     .run()
... )
>>> result.dims
('configuration', 'temperature')
>>> result.select(configuration="5INV").values.shape
(41,)

Technology nodes themselves are a sweep axis — ``Axis.technology``
evaluates one banked sweep per node and stacks the results, so a
scaling study is a declaration, not a hand-written loop:

>>> study = (
...     Sweep(configuration="2INV+3NAND2")
...     .over(Axis.technology(["cmos035", "cmos018"]))
...     .over(Axis.temperature(np.linspace(-40.0, 125.0, 12)))
...     .run()
... )
>>> study.dims
('technology', 'temperature')

Technology identity is content-addressed: every registered node gets a
SHA-256 digest of its canonical parameter bundle, serialized specs
reference nodes as ``{"name", "digest"}`` objects, and a receiving
registry that binds the same name to different physics refuses the
spec (``repro.tech.registry``, ``TechnologyMismatchError``; the sweep
service reports it as the structured ``tech-mismatch`` error code).
Re-registering a node under the same name therefore changes every
cache key that mentions it — stale cached results cannot be served
across re-registrations, in memory or from a shared disk cache.

:class:`repro.engine.BatchEvaluator` remains as a thin
backward-compatible adapter over the sweep API:

>>> from repro import BatchEvaluator, RingConfiguration
>>> engine = BatchEvaluator()
>>> study = engine.run_monte_carlo(
...     CMOS035, RingConfiguration.parse("2INV+3NAND2"), sample_count=25)
>>> study.sample_count
25

The scalar loops are retained as the reference oracle:
``BatchEvaluator(vectorized=False)`` reproduces them step for step,
and ``tests/test_engine_equivalence.py`` /
``tests/test_stacked_equivalence.py`` / ``tests/test_sweep_api.py``
pin the broadcast paths to them at a relative tolerance of 1e-9 on
periods.

Environment knobs
-----------------

Every runtime knob the package reads from the environment, in one
place.  Command-line flags (``repro-experiments``, ``repro-serve``)
win over these; explicit keyword arguments in code win over both.

=========================================  ==================================================
variable                                   meaning (default)
=========================================  ==================================================
``REPRO_SWEEP_EXECUTOR``                   sweep execution backend: ``dense`` | ``serial`` |
                                           ``process`` | ``memmap`` (``dense``)
``REPRO_SWEEP_WORKERS``                    worker count of the ``process`` backend
                                           (cpu count)
``REPRO_SWEEP_TILE_ELEMENTS``              per-tile element budget of tiled backends
                                           (``2**20``, an 8 MiB tile)
``REPRO_THERMAL_METHOD``                   resolve ``auto`` thermal solves to ``direct`` |
                                           ``iterative`` | ``multigrid`` (size-based choice)
``REPRO_THERMAL_ITERATIVE_THRESHOLD``      unknown count where ``auto`` thermal solves go
                                           iterative (operator's built-in threshold)
``REPRO_SERVE_HOST``                       sweep-service bind address (``127.0.0.1``)
``REPRO_SERVE_PORT``                       sweep-service bind port, 0 = ephemeral (``7753``)
``REPRO_SERVE_WORKERS``                    concurrent service evaluation slots; above 1,
                                           evaluations route through a shared process
                                           pool of the same size (1)
``REPRO_SERVE_QUEUE_DEPTH``                bounded service evaluation-queue depth; beyond
                                           it requests fail fast with ``busy`` (128)
``REPRO_SERVE_CACHE_BYTES``                service memory result-cache budget in payload
                                           bytes (64 MiB)
``REPRO_SERVE_CACHE_DIR``                  service disk-cache directory; results persist
                                           across restarts and between servers sharing
                                           it (unset = memory only)
``REPRO_SERVE_DISK_CACHE_BYTES``           service disk-tier byte budget, LRU-evicted by
                                           file mtime (1 GiB)
``REPRO_SERVE_BATCH_WINDOW_MS``            service coalescing window for point queries
                                           and overlapping sweeps (5 ms)
``REPRO_SERVE_STREAM_THRESHOLD_BYTES``     encoded result size where service responses
                                           switch to tile streaming (1 MiB)
=========================================  ==================================================
"""

from .tech import (
    CMOS013,
    CMOS018,
    CMOS025,
    CMOS035,
    Technology,
    TechnologyArray,
    TechnologyError,
    TransistorParameters,
    get_technology,
    sample_technology_array,
    stack_technologies,
)
from .cells import CellLibrary, StandardCell, default_library
from .oscillator import (
    PAPER_FIG3_CONFIGURATIONS,
    ConfigurationBank,
    RingConfiguration,
    RingOscillator,
    TemperatureResponse,
    analytical_response,
)
from .analysis import nonlinearity, sensitivity_report
from .engine import (
    Axis,
    BatchEvaluator,
    HistogramReducer,
    MeanReducer,
    MemmapExecutor,
    PercentileReducer,
    ProcessExecutor,
    SerialExecutor,
    Sweep,
    SweepResult,
)
from .core import (
    LinearCalibration,
    ReadoutConfig,
    SensorBank,
    SensorMultiplexer,
    SmartTemperatureSensor,
    ThermalMonitor,
)
from .thermal import (
    Floorplan,
    PowerMap,
    ThermalGrid,
    ThermalOperator,
    solve_steady_state,
)

__version__ = "1.0.0"

__all__ = [
    "CMOS013",
    "CMOS018",
    "CMOS025",
    "CMOS035",
    "Technology",
    "TechnologyArray",
    "TechnologyError",
    "TransistorParameters",
    "get_technology",
    "sample_technology_array",
    "stack_technologies",
    "CellLibrary",
    "StandardCell",
    "default_library",
    "PAPER_FIG3_CONFIGURATIONS",
    "ConfigurationBank",
    "RingConfiguration",
    "RingOscillator",
    "TemperatureResponse",
    "analytical_response",
    "nonlinearity",
    "sensitivity_report",
    "Axis",
    "BatchEvaluator",
    "HistogramReducer",
    "MeanReducer",
    "MemmapExecutor",
    "PercentileReducer",
    "ProcessExecutor",
    "SerialExecutor",
    "Sweep",
    "SweepResult",
    "LinearCalibration",
    "ReadoutConfig",
    "SensorBank",
    "SensorMultiplexer",
    "SmartTemperatureSensor",
    "ThermalMonitor",
    "Floorplan",
    "PowerMap",
    "ThermalGrid",
    "ThermalOperator",
    "solve_steady_state",
    "__version__",
]
