"""Ring-oscillator construction, period models, configurations and banks."""

from .bank import ConfigurationBank
from .config import (
    PAPER_FIG3_CONFIGURATIONS,
    ConfigurationError,
    RingConfiguration,
    paper_fig3_configurations,
)
from .ring import RingOscillator, RingStage
from .period import (
    TemperatureResponse,
    analytical_response,
    default_temperature_grid,
    paper_temperature_grid,
    simulated_response,
    validate_temperature_grid,
)

__all__ = [
    "ConfigurationBank",
    "PAPER_FIG3_CONFIGURATIONS",
    "ConfigurationError",
    "RingConfiguration",
    "paper_fig3_configurations",
    "RingOscillator",
    "RingStage",
    "TemperatureResponse",
    "analytical_response",
    "default_temperature_grid",
    "paper_temperature_grid",
    "simulated_response",
    "validate_temperature_grid",
]
