"""Ring-oscillator model.

A :class:`RingOscillator` binds a :class:`~repro.oscillator.config.RingConfiguration`
to a :class:`~repro.cells.library.CellLibrary` and answers the two
questions the sensor needs:

* *analytically*: what is the oscillation period at a given junction
  temperature?  (Sum of tpHL + tpLH of every stage, each stage loaded by
  the next stage's input capacitance, its own output parasitics and a
  short local wire.)  This backs the Fig. 2 / Fig. 3 temperature sweeps.
* *at transistor level*: build the ring as an MNA netlist with explicit
  load capacitors and travelling-wave initial conditions, so the
  transient simulator can produce the start-up waveform of the paper's
  Fig. 1 and validate the analytical period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cells.cell import CellError, StandardCell
from ..cells.library import CellLibrary
from ..circuit.netlist import Circuit
from ..circuit.transient import TransientOptions, TransientResult, simulate_transient
from ..circuit.waveform import Waveform
from ..delay.load import wire_capacitance
from ..tech.parameters import celsius_to_kelvin
from .config import ConfigurationError, RingConfiguration

__all__ = ["RingOscillator", "RingStage"]


@dataclass(frozen=True)
class RingStage:
    """One stage of a resolved ring: the driving cell and its output load."""

    index: int
    cell: StandardCell
    load_f: float


class RingOscillator:
    """A ring oscillator built from standard-library cells.

    Parameters
    ----------
    library:
        Cell library providing the stages.
    configuration:
        Ordered stage cell names.
    wire_length_um:
        Local wire length between consecutive stages (adds a small fixed
        capacitance per stage).
    external_load_f:
        Additional capacitance on every stage output, e.g. the tap that
        feeds the readout counter (applied to the tapped stage only if
        ``tap_stage`` is given).
    tap_stage:
        Stage index whose output drives the readout logic; ``None``
        spreads ``external_load_f`` over no stage.
    """

    def __init__(
        self,
        library: CellLibrary,
        configuration: RingConfiguration,
        wire_length_um: float = 2.0,
        external_load_f: float = 0.0,
        tap_stage: Optional[int] = None,
    ) -> None:
        self.library = library
        self.configuration = configuration
        self.wire_length_um = float(wire_length_um)
        self.external_load_f = float(external_load_f)
        if tap_stage is not None and not 0 <= tap_stage < configuration.stage_count:
            raise ConfigurationError(
                f"tap_stage {tap_stage} outside the ring (0..{configuration.stage_count - 1})"
            )
        self.tap_stage = tap_stage

        self._cells: List[StandardCell] = []
        for name in configuration.stages:
            cell = library.get(name)
            if not cell.topology.inverting:
                raise ConfigurationError(
                    f"cell {cell.name!r} is not inverting and cannot be a ring stage"
                )
            if cell.topology.stages != 1:
                raise ConfigurationError(
                    f"cell {cell.name!r} is a multi-stage cell and cannot be a ring stage"
                )
            self._cells.append(cell)

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    @property
    def stage_count(self) -> int:
        return self.configuration.stage_count

    @property
    def technology(self):
        return self.library.technology

    def cells(self) -> List[StandardCell]:
        """The resolved stage cells in ring order."""
        return list(self._cells)

    def stages(self) -> List[RingStage]:
        """Stages with their resolved output loads."""
        tech = self.technology
        wire_f = wire_capacitance(tech, self.wire_length_um)
        result: List[RingStage] = []
        for index, cell in enumerate(self._cells):
            next_cell = self._cells[(index + 1) % self.stage_count]
            load = next_cell.input_capacitance() + wire_f
            if self.tap_stage is not None and index == self.tap_stage:
                load += self.external_load_f
            result.append(RingStage(index=index, cell=cell, load_f=load))
        return result

    def transistor_count(self) -> int:
        """Total transistors in the ring (excluding readout logic)."""
        return sum(cell.transistor_count() for cell in self._cells)

    def area_um2(self) -> float:
        """First-order layout area of the ring."""
        return sum(cell.area_um2() for cell in self._cells)

    def label(self) -> str:
        return self.configuration.label()

    # ------------------------------------------------------------------ #
    # analytical period
    # ------------------------------------------------------------------ #

    def period(self, temperature_c: float) -> float:
        """Oscillation period (s) at a junction temperature.

        ``T = sum_i (tpHL_i + tpLH_i)`` — the textbook ring-oscillator
        period formula quoted in the paper's Section 2, generalised to
        per-stage delays because the stages need not be identical.
        """
        total = 0.0
        for stage in self.stages():
            total += stage.cell.stage_delay_sum(temperature_c, stage.load_f)
        return total

    def frequency(self, temperature_c: float) -> float:
        """Oscillation frequency (Hz) at a junction temperature."""
        return 1.0 / self.period(temperature_c)

    def period_series(self, temperatures_c: Sequence[float]) -> np.ndarray:
        """Periods (s) over a temperature sweep."""
        return np.asarray([self.period(float(t)) for t in temperatures_c])

    def sensitivity(self, temperature_c: float, delta_c: float = 1.0) -> float:
        """Local d(period)/dT (s/K) by central difference."""
        upper = self.period(temperature_c + delta_c)
        lower = self.period(temperature_c - delta_c)
        return (upper - lower) / (2.0 * delta_c)

    def dynamic_power(self, temperature_c: float, activity: float = 1.0) -> float:
        """Dynamic power (W) dissipated by the free-running ring.

        Every stage output swings rail to rail once per period, so
        ``P = f * Vdd^2 * sum(C_stage)``; used by the self-heating study.
        """
        tech = self.technology
        total_cap = sum(
            stage.load_f + stage.cell.output_parasitic_capacitance()
            for stage in self.stages()
        )
        return activity * self.frequency(temperature_c) * tech.vdd ** 2 * total_cap

    # ------------------------------------------------------------------ #
    # transistor-level simulation
    # ------------------------------------------------------------------ #

    def stage_node(self, index: int) -> str:
        """Name of the output node of a stage in the generated netlist."""
        if not 0 <= index < self.stage_count:
            raise ConfigurationError(f"stage index {index} outside the ring")
        return f"s{index}"

    def build_circuit(self, temperature_c: float) -> Circuit:
        """Build the transistor-level netlist of the ring.

        Gate input capacitances and drain parasitics are added as
        explicit lumped capacitors on every stage output (the MOSFET
        elements model only the channel current), and travelling-wave
        initial conditions are installed so the oscillation starts
        immediately instead of hanging at the metastable DC point.
        """
        tech = self.technology
        temp_k = celsius_to_kelvin(temperature_c)
        vdd = tech.vdd
        circuit = Circuit(name=f"ring_{self.label()}")
        circuit.add_voltage_source("vdd", "gnd", vdd, name="VDD")

        stages = self.stages()
        for stage in stages:
            input_node = self.stage_node((stage.index - 1) % self.stage_count)
            output_node = self.stage_node(stage.index)
            stage.cell.build_into(
                circuit,
                input_node,
                output_node,
                "vdd",
                temp_k,
                instance=f"u{stage.index}",
            )
            total_cap = stage.load_f + stage.cell.output_parasitic_capacitance()
            circuit.add_capacitor(
                output_node, "gnd", total_cap, name=f"CL{stage.index}"
            )

        # Travelling-wave initial condition: alternate rails around the
        # ring and park the last node at mid-rail so one edge is already
        # in flight at t = 0.
        conditions: Dict[str, float] = {"vdd": vdd}
        for index in range(self.stage_count):
            if index == self.stage_count - 1:
                conditions[self.stage_node(index)] = 0.5 * vdd
            else:
                conditions[self.stage_node(index)] = vdd if index % 2 else 0.0
        circuit.set_initial_conditions(conditions)
        return circuit

    def simulate(
        self,
        temperature_c: float,
        cycles: float = 6.0,
        points_per_period: int = 400,
        observe_stage: int = 0,
    ) -> Waveform:
        """Simulate the ring and return the waveform of one stage output.

        Parameters
        ----------
        temperature_c:
            Junction temperature.
        cycles:
            Simulated duration expressed in analytical periods.
        points_per_period:
            Timestep resolution (analytical period / this value).
        observe_stage:
            Which stage output to return.
        """
        if cycles <= 1.0:
            raise ConfigurationError("simulate at least one full period")
        analytical_period = self.period(temperature_c)
        timestep = analytical_period / float(points_per_period)
        duration = cycles * analytical_period
        circuit = self.build_circuit(temperature_c)
        options = TransientOptions(timestep=timestep, use_dc_start=False)
        node = self.stage_node(observe_stage)
        result = simulate_transient(circuit, duration, options, record_nodes=[node])
        return result.waveform(node)

    def simulated_period(
        self,
        temperature_c: float,
        cycles: float = 8.0,
        points_per_period: int = 400,
    ) -> float:
        """Oscillation period extracted from a transient simulation."""
        waveform = self.simulate(temperature_c, cycles=cycles, points_per_period=points_per_period)
        return waveform.period(threshold=0.5 * self.technology.vdd, skip_cycles=2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingOscillator({self.label()!r}, {self.library.technology.name})"
