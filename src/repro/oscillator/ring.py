"""Ring-oscillator model.

A :class:`RingOscillator` binds a :class:`~repro.oscillator.config.RingConfiguration`
to a :class:`~repro.cells.library.CellLibrary` and answers the two
questions the sensor needs:

* *analytically*: what is the oscillation period at a given junction
  temperature?  (Sum of tpHL + tpLH of every stage, each stage loaded by
  the next stage's input capacitance, its own output parasitics and a
  short local wire.)  This backs the Fig. 2 / Fig. 3 temperature sweeps.
* *at transistor level*: build the ring as an MNA netlist with explicit
  load capacitors and travelling-wave initial conditions, so the
  transient simulator can produce the start-up waveform of the paper's
  Fig. 1 and validate the analytical period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cells.cell import CellError, StandardCell
from ..cells.library import CellLibrary
from ..circuit.netlist import Circuit
from ..circuit.transient import TransientOptions, TransientResult, simulate_transient
from ..circuit.waveform import Waveform
from ..delay.load import wire_capacitance
from ..tech.parameters import TechnologyError, celsius_to_kelvin
from ..tech.stacked import TechnologyArray, stack_technologies
from .config import ConfigurationError, RingConfiguration

__all__ = ["RingOscillator", "RingStage"]


@dataclass(frozen=True)
class RingStage:
    """One stage of a resolved ring: the driving cell and its output load."""

    index: int
    cell: StandardCell
    load_f: float


class RingOscillator:
    """A ring oscillator built from standard-library cells.

    Parameters
    ----------
    library:
        Cell library providing the stages.
    configuration:
        Ordered stage cell names.
    wire_length_um:
        Local wire length between consecutive stages (adds a small fixed
        capacitance per stage).
    external_load_f:
        Additional capacitance of the tap that feeds the readout
        counter, applied to exactly one stage output (the tapped stage).
    tap_stage:
        Stage index whose output drives the readout logic.  ``None``
        (the default) taps the last stage whenever ``external_load_f``
        is non-zero, so the tap load is never silently dropped.
    """

    def __init__(
        self,
        library: CellLibrary,
        configuration: RingConfiguration,
        wire_length_um: float = 2.0,
        external_load_f: float = 0.0,
        tap_stage: Optional[int] = None,
    ) -> None:
        self.library = library
        self.configuration = configuration
        self.wire_length_um = float(wire_length_um)
        self.external_load_f = float(external_load_f)
        if tap_stage is not None and not 0 <= tap_stage < configuration.stage_count:
            raise ConfigurationError(
                f"tap_stage {tap_stage} outside the ring (0..{configuration.stage_count - 1})"
            )
        self.tap_stage = tap_stage

        self._cells: List[StandardCell] = []
        for name in configuration.stages:
            cell = library.get(name)
            if not cell.topology.inverting:
                raise ConfigurationError(
                    f"cell {cell.name!r} is not inverting and cannot be a ring stage"
                )
            if cell.topology.stages != 1:
                raise ConfigurationError(
                    f"cell {cell.name!r} is a multi-stage cell and cannot be a ring stage"
                )
            self._cells.append(cell)

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    @property
    def stage_count(self) -> int:
        return self.configuration.stage_count

    @property
    def technology(self):
        return self.library.technology

    def cells(self) -> List[StandardCell]:
        """The resolved stage cells in ring order."""
        return list(self._cells)

    def effective_tap_stage(self) -> Optional[int]:
        """The stage whose output carries ``external_load_f``.

        An explicit ``tap_stage`` wins; otherwise the last stage is
        tapped whenever an external load was given (a non-zero
        ``external_load_f`` must load *some* stage — silently ignoring
        it would make the parameter dead).
        """
        if self.tap_stage is not None:
            return self.tap_stage
        if self.external_load_f > 0.0:
            return self.stage_count - 1
        return None

    def stages(self) -> List[RingStage]:
        """Stages with their resolved output loads."""
        tech = self.technology
        wire_f = wire_capacitance(tech, self.wire_length_um)
        tap = self.effective_tap_stage()
        result: List[RingStage] = []
        for index, cell in enumerate(self._cells):
            next_cell = self._cells[(index + 1) % self.stage_count]
            load = next_cell.input_capacitance() + wire_f
            if tap is not None and index == tap:
                load += self.external_load_f
            result.append(RingStage(index=index, cell=cell, load_f=load))
        return result

    def transistor_count(self) -> int:
        """Total transistors in the ring (excluding readout logic)."""
        return sum(cell.transistor_count() for cell in self._cells)

    def area_um2(self) -> float:
        """First-order layout area of the ring."""
        return sum(cell.area_um2() for cell in self._cells)

    def label(self) -> str:
        return self.configuration.label()

    # ------------------------------------------------------------------ #
    # analytical period
    # ------------------------------------------------------------------ #

    def period(self, temperature_c: float) -> float:
        """Oscillation period (s) at a junction temperature.

        ``T = sum_i (tpHL_i + tpLH_i)`` — the textbook ring-oscillator
        period formula quoted in the paper's Section 2, generalised to
        per-stage delays because the stages need not be identical.
        """
        total = 0.0
        for stage in self.stages():
            total += stage.cell.stage_delay_sum(temperature_c, stage.load_f)
        return total

    def frequency(self, temperature_c: float) -> float:
        """Oscillation frequency (Hz) at a junction temperature."""
        return 1.0 / self.period(temperature_c)

    def period_series(self, temperatures_c: Sequence[float]) -> np.ndarray:
        """Periods (s) over a temperature sweep (vectorized).

        Each stage's delay contribution is evaluated once for the whole
        temperature grid and accumulated — a single vectorized stage-sum
        instead of a Python loop over temperatures.  Matches
        :meth:`period_series_scalar` (and therefore :meth:`period`) to
        floating-point rounding.

        For a ring bound to a stacked population
        (:class:`~repro.tech.stacked.TechnologyArray`, see
        :meth:`rebind`) the per-stage delays carry a leading sample axis
        and the result is the full ``(samples, temperatures)`` period
        matrix from the same single stage-sum.
        """
        temps = np.asarray(temperatures_c, dtype=float)
        total = np.zeros(temps.shape)
        for stage in self.stages():
            total = total + stage.cell.stage_delay_sum(temps, stage.load_f)
        return total

    def period_series_scalar(self, temperatures_c: Sequence[float]) -> np.ndarray:
        """Periods (s) over a temperature sweep, one scalar call per point.

        The pre-vectorization reference path, kept as the oracle the
        equivalence tests (and :class:`repro.engine.BatchEvaluator` in
        scalar mode) compare the batch engine against.
        """
        return np.asarray([self.period(float(t)) for t in temperatures_c])

    def rebind(self, technology) -> "RingOscillator":
        """A copy of this ring implemented in another technology.

        The stage cells keep their names, topologies, sizings and delay
        options; only the technology (and therefore every
        temperature-dependent parameter and parasitic) changes.  This is
        how the batch engine sweeps one ring design across Monte-Carlo
        or corner technology samples without rebuilding a full default
        library per sample.

        ``technology`` may be a stacked population
        (:class:`~repro.tech.stacked.TechnologyArray`): the rebound
        ring then represents *every* sample at once, and its analytical
        evaluations (:meth:`period_series`, :meth:`period`) broadcast
        over the leading sample axis.
        """
        library = CellLibrary(f"{self.library.name}@{technology.name}", technology)
        seen = set()
        for cell in self._cells:
            if cell.name in seen:
                continue
            seen.add(cell.name)
            library.add(
                StandardCell(
                    name=cell.name,
                    technology=technology,
                    topology=cell.topology,
                    nmos_width_um=cell.nmos_width_um,
                    pmos_width_um=cell.pmos_width_um,
                    delay_options=cell.delay_options,
                )
            )
        return RingOscillator(
            library,
            self.configuration,
            wire_length_um=self.wire_length_um,
            external_load_f=self.external_load_f,
            tap_stage=self.tap_stage,
        )

    def period_matrix(
        self,
        technologies: Sequence,
        temperatures_c: Sequence[float],
    ) -> np.ndarray:
        """Periods (s) on a (technology sample x temperature) grid.

        Stacks the technologies into one struct-of-arrays population
        (:func:`~repro.tech.stacked.stack_technologies`; an existing
        :class:`~repro.tech.stacked.TechnologyArray` is used as is),
        re-binds the ring once, and evaluates the whole
        ``(len(technologies), len(temperatures_c))`` matrix in a single
        broadcast stage-sum — no per-sample rebind, no Python loop over
        samples.  Technology lists that cannot be stacked (samples
        disagreeing on the geometry scalars, e.g. when comparing
        technology nodes) fall back to the per-sample loop, so any list
        the pre-stacking path accepted still evaluates.
        :meth:`period_matrix_loop` keeps the per-sample path as the
        equivalence oracle.
        """
        temps = np.asarray(temperatures_c, dtype=float)
        if isinstance(technologies, TechnologyArray):
            stacked = technologies
        else:
            try:
                stacked = stack_technologies(technologies)
            except TechnologyError:
                return self.period_matrix_loop(technologies, temps)
        matrix = self.rebind(stacked).period_series(temps)
        return np.asarray(matrix, dtype=float).reshape(len(stacked), temps.size)

    def period_matrix_loop(
        self,
        technologies: Sequence,
        temperatures_c: Sequence[float],
    ) -> np.ndarray:
        """Per-sample reference path of :meth:`period_matrix`.

        Re-binds the ring to each technology in turn and evaluates the
        vectorized temperature axis once per sample.  This was the
        default before the stacked sample axis existed; it is retained
        as the oracle the stacked-equivalence tests (and the scalar
        engine mode) compare against.
        """
        temps = np.asarray(temperatures_c, dtype=float)
        if isinstance(technologies, TechnologyArray):
            technologies = technologies.technologies()
        matrix = np.zeros((len(technologies), temps.size))
        for row, tech in enumerate(technologies):
            matrix[row] = self.rebind(tech).period_series(temps)
        return matrix

    def sensitivity(self, temperature_c: float, delta_c: float = 1.0) -> float:
        """Local d(period)/dT (s/K) by central difference."""
        upper = self.period(temperature_c + delta_c)
        lower = self.period(temperature_c - delta_c)
        return (upper - lower) / (2.0 * delta_c)

    def switched_capacitance(self):
        """Total capacitance switched per oscillation cycle (F).

        Sum of every stage's output load plus its own drain parasitics —
        the ``C`` of the ``P = f * Vdd^2 * C`` dynamic-power model.  For
        a ring bound to a stacked population the per-stage terms carry
        the sample axis and the result is an ``(samples, 1)`` column.
        """
        return sum(
            stage.load_f + stage.cell.output_parasitic_capacitance()
            for stage in self.stages()
        )

    def dynamic_power(self, temperature_c: float, activity: float = 1.0) -> float:
        """Dynamic power (W) dissipated by the free-running ring.

        Every stage output swings rail to rail once per period, so
        ``P = f * Vdd^2 * sum(C_stage)``; used by the self-heating study
        and the sweep engine's ``power`` observable.
        """
        tech = self.technology
        return (
            activity
            * self.frequency(temperature_c)
            * tech.vdd ** 2
            * self.switched_capacitance()
        )

    # ------------------------------------------------------------------ #
    # transistor-level simulation
    # ------------------------------------------------------------------ #

    def stage_node(self, index: int) -> str:
        """Name of the output node of a stage in the generated netlist."""
        if not 0 <= index < self.stage_count:
            raise ConfigurationError(f"stage index {index} outside the ring")
        return f"s{index}"

    def build_circuit(self, temperature_c: float) -> Circuit:
        """Build the transistor-level netlist of the ring.

        Gate input capacitances and drain parasitics are added as
        explicit lumped capacitors on every stage output (the MOSFET
        elements model only the channel current), and travelling-wave
        initial conditions are installed so the oscillation starts
        immediately instead of hanging at the metastable DC point.
        """
        tech = self.technology
        temp_k = celsius_to_kelvin(temperature_c)
        vdd = tech.vdd
        circuit = Circuit(name=f"ring_{self.label()}")
        circuit.add_voltage_source("vdd", "gnd", vdd, name="VDD")

        stages = self.stages()
        for stage in stages:
            input_node = self.stage_node((stage.index - 1) % self.stage_count)
            output_node = self.stage_node(stage.index)
            stage.cell.build_into(
                circuit,
                input_node,
                output_node,
                "vdd",
                temp_k,
                instance=f"u{stage.index}",
            )
            total_cap = stage.load_f + stage.cell.output_parasitic_capacitance()
            circuit.add_capacitor(
                output_node, "gnd", total_cap, name=f"CL{stage.index}"
            )

        # Travelling-wave initial condition: alternate rails around the
        # ring and park the last node at mid-rail so one edge is already
        # in flight at t = 0.
        conditions: Dict[str, float] = {"vdd": vdd}
        for index in range(self.stage_count):
            if index == self.stage_count - 1:
                conditions[self.stage_node(index)] = 0.5 * vdd
            else:
                conditions[self.stage_node(index)] = vdd if index % 2 else 0.0
        circuit.set_initial_conditions(conditions)
        return circuit

    def simulate(
        self,
        temperature_c: float,
        cycles: float = 6.0,
        points_per_period: int = 400,
        observe_stage: int = 0,
    ) -> Waveform:
        """Simulate the ring and return the waveform of one stage output.

        Parameters
        ----------
        temperature_c:
            Junction temperature.
        cycles:
            Simulated duration expressed in analytical periods.
        points_per_period:
            Timestep resolution (analytical period / this value).
        observe_stage:
            Which stage output to return.
        """
        if cycles <= 1.0:
            raise ConfigurationError("simulate at least one full period")
        analytical_period = self.period(temperature_c)
        timestep = analytical_period / float(points_per_period)
        duration = cycles * analytical_period
        circuit = self.build_circuit(temperature_c)
        options = TransientOptions(timestep=timestep, use_dc_start=False)
        node = self.stage_node(observe_stage)
        result = simulate_transient(circuit, duration, options, record_nodes=[node])
        return result.waveform(node)

    def simulated_period(
        self,
        temperature_c: float,
        cycles: float = 8.0,
        points_per_period: int = 400,
    ) -> float:
        """Oscillation period extracted from a transient simulation."""
        waveform = self.simulate(temperature_c, cycles=cycles, points_per_period=points_per_period)
        return waveform.period(threshold=0.5 * self.technology.vdd, skip_cycles=2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingOscillator({self.label()!r}, {self.library.technology.name})"
