"""Stacked ring-configuration banks: the configuration axis of the batch engine.

PR 1 vectorized the temperature axis and PR 2 stacked the technology
*sample* axis, but the paper's Fig. 3 — many ring *configurations*
evaluated against the same library — still cost one full pass through
the delay stack per configuration.  A :class:`ConfigurationBank` stacks
many :class:`~repro.oscillator.config.RingConfiguration`\\ s into one
padded ``(config, stage)`` cell table with a validity mask, so the whole
Fig. 3 x Monte-Carlo cross product evaluates as a single ``(C, S, T)``
broadcast:

* every *unique* cell of the bank contributes one vectorized
  delay-per-farad curve ``K_u = fit * Vdd * (1/I_pull_down + 1/I_pull_up)``
  over the ``(sample, temperature)`` grid (two
  :func:`~repro.delay.alpha_power.effective_saturation_current` calls
  per unique cell — the only transcendental work in the whole bank),
* the padded cell table reduces each configuration to per-unique-cell
  *load weights* (the summed output loads of the stages driving that
  cell type, tap and wire loads included), and
* the period tensor is the weights-times-curves contraction
  ``period[c] = sum_u W[u, c] * K[u]`` — one broadcast multiply-add per
  unique cell, no Python loop over configurations, samples or
  temperatures.

The per-configuration loop (one
:meth:`~repro.oscillator.ring.RingOscillator.period_matrix` per ring) is
retained as :meth:`ConfigurationBank.period_tensor_loop`, the oracle the
equivalence tests pin the stacked path against (relative tolerance
1e-9; in practice the two orderings of the same arithmetic agree to a
few ULP).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..cells.cell import StandardCell
from ..cells.library import CellLibrary
from ..delay.alpha_power import DriveNetwork, effective_saturation_current
from ..tech.parameters import TechnologyError
from ..tech.stacked import TechnologyArray, stack_technologies
from .config import ConfigurationError, RingConfiguration
from .ring import RingOscillator

__all__ = ["ConfigurationBank", "normalise_configurations"]

#: Padding value used in the ``(config, stage)`` cell-index table.
_PAD = -1


class ConfigurationBank:
    """Many ring configurations stacked for one-shot batch evaluation.

    Parameters
    ----------
    library:
        Cell library every configuration draws its stages from.
    configurations:
        The configurations to stack: a mapping of label to
        :class:`~repro.oscillator.config.RingConfiguration` (the Fig. 3
        style), or a sequence of configurations / parseable
        configuration strings (labelled by their canonical
        ``cfg.label()``).
    wire_length_um / external_load_f / tap_stage:
        Forwarded to every ring, matching the
        :class:`~repro.oscillator.ring.RingOscillator` defaults.

    The constructor resolves every configuration into a real
    :class:`~repro.oscillator.ring.RingOscillator` (so all structural
    validation — odd stage counts, inverting single-stage cells —
    happens up front) and builds the padded ``(config, stage)``
    cell-index table the broadcast evaluation consumes.  Configurations
    of different lengths are padded to the longest ring; the validity
    mask marks the real stages.
    """

    def __init__(
        self,
        library: CellLibrary,
        configurations: Union[
            Mapping[str, RingConfiguration],
            Sequence[Union[RingConfiguration, str]],
        ],
        wire_length_um: float = 2.0,
        external_load_f: float = 0.0,
        tap_stage: Optional[int] = None,
    ) -> None:
        labels, configs = normalise_configurations(configurations)
        self.library = library
        self.labels: Tuple[str, ...] = labels
        self.configurations: Tuple[RingConfiguration, ...] = configs
        self.wire_length_um = float(wire_length_um)
        self.external_load_f = float(external_load_f)
        self.tap_stage = tap_stage
        self._rings: List[RingOscillator] = [
            RingOscillator(
                library,
                configuration,
                wire_length_um=wire_length_um,
                external_load_f=external_load_f,
                tap_stage=tap_stage,
            )
            for configuration in configs
        ]

        # The padded (config, stage) cell table: unique cells are
        # indexed in first-appearance order; padding slots hold _PAD and
        # are masked out of every reduction.
        self._unique_names: List[str] = []
        index_of: Dict[str, int] = {}
        max_stages = max(ring.stage_count for ring in self._rings)
        table = np.full((len(self._rings), max_stages), _PAD, dtype=int)
        for row, ring in enumerate(self._rings):
            for stage in ring.stages():
                name = stage.cell.name
                if name not in index_of:
                    index_of[name] = len(self._unique_names)
                    self._unique_names.append(name)
                table[row, stage.index] = index_of[name]
        self._cell_index = table

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    @property
    def config_count(self) -> int:
        return len(self._rings)

    def __len__(self) -> int:
        return self.config_count

    @property
    def max_stage_count(self) -> int:
        return int(self._cell_index.shape[1])

    def stage_counts(self) -> np.ndarray:
        """Number of real stages per configuration."""
        return np.asarray([ring.stage_count for ring in self._rings])

    def unique_cell_names(self) -> Tuple[str, ...]:
        """Distinct library cells the bank's stages resolve to."""
        return tuple(self._unique_names)

    def cell_table(self) -> np.ndarray:
        """The padded ``(config, stage)`` table of cell names ('' = padding)."""
        names = np.asarray(self._unique_names + [""], dtype=object)
        return names[self._cell_index]

    def validity_mask(self) -> np.ndarray:
        """Boolean ``(config, stage)`` mask of the real (non-padded) stages."""
        return self._cell_index != _PAD

    def rings(self) -> List[RingOscillator]:
        """The resolved per-configuration rings (the loop oracle's view)."""
        return list(self._rings)

    def ring_at(self, index: int) -> RingOscillator:
        if not 0 <= index < self.config_count:
            raise ConfigurationError(
                f"configuration index {index} outside the bank "
                f"(0..{self.config_count - 1})"
            )
        return self._rings[index]

    def areas_um2(self) -> np.ndarray:
        """First-order layout area per configuration."""
        return np.asarray([ring.area_um2() for ring in self._rings])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConfigurationBank({self.config_count} configurations, "
            f"{len(self._unique_names)} unique cells, "
            f"library={self.library.name!r})"
        )

    # ------------------------------------------------------------------ #
    # batch evaluation
    # ------------------------------------------------------------------ #

    def _bound_rings(self, technologies) -> Tuple[List[RingOscillator], Optional[TechnologyArray]]:
        """Rings (and the stacked population, if any) to evaluate with.

        ``technologies=None`` evaluates against the library's own
        technology; otherwise the population is stacked (an existing
        :class:`~repro.tech.stacked.TechnologyArray` is used as is) and
        every ring is rebound to it once.
        """
        if technologies is None:
            return self._rings, None
        if isinstance(technologies, TechnologyArray):
            population = technologies
        else:
            population = stack_technologies(technologies)
        return [ring.rebind(population) for ring in self._rings], population

    def period_tensor(
        self,
        temperatures_c: Sequence[float],
        technologies=None,
    ) -> np.ndarray:
        """Periods (s) of every configuration in one broadcast pass.

        Returns a ``(config, temperature)`` matrix, or the full
        ``(config, sample, temperature)`` tensor when ``technologies``
        is a population (a :class:`~repro.tech.stacked.TechnologyArray`
        or a stackable sequence of technologies).  Technology lists that
        cannot be stacked (samples disagreeing on geometry scalars) fall
        back to the per-configuration loop, so any input
        :meth:`period_tensor_loop` accepts still evaluates.
        """
        temps = np.asarray(temperatures_c, dtype=float)
        if technologies is not None and not isinstance(technologies, TechnologyArray):
            try:
                technologies = stack_technologies(technologies)
            except TechnologyError:
                return self.period_tensor_loop(temps, technologies)
        rings, population = self._bound_rings(technologies)
        sample_count = len(population) if population is not None else 1
        stages_per_ring = [ring.stages() for ring in rings]

        # One delay-per-farad curve per unique cell: K_u(T) such that a
        # stage built from cell u with total output load L contributes
        # K_u * L to the ring period.  Shapes: (S, T) columns against
        # the temperature row (S = 1 collapses to the scalar case).
        # Each rebound ring's library holds only its own cells, so the
        # bound cell objects are gathered from the resolved stages.
        bound_cells: Dict[str, StandardCell] = {}
        for stages in stages_per_ring:
            for stage in stages:
                bound_cells.setdefault(stage.cell.name, stage.cell)
        tech = rings[0].technology
        curves = np.empty(
            (len(self._unique_names), sample_count, temps.size), dtype=float
        )
        for u, name in enumerate(self._unique_names):
            curves[u] = np.broadcast_to(
                _delay_per_farad(tech, bound_cells[name], temps),
                (sample_count, temps.size),
            )

        # Per-unique-cell load weights from the padded cell table: the
        # summed total output load (next stage's input + wire + tap +
        # own parasitic) of every stage driving that cell type.
        weights = np.zeros(
            (len(self._unique_names), self.config_count, sample_count, 1),
            dtype=float,
        )
        for row, stages in enumerate(stages_per_ring):
            for stage in stages:
                u = self._cell_index[row, stage.index]
                total_load = np.asarray(
                    stage.load_f + stage.cell.output_parasitic_capacitance(),
                    dtype=float,
                )
                weights[u, row] += total_load.reshape(-1, 1)

        # The contraction: period[c] = sum_u W[u, c] * K[u], i.e. one
        # (C, S, 1) x (S, T) multiply-add per unique cell.
        tensor = np.zeros((self.config_count, sample_count, temps.size))
        for u in range(len(self._unique_names)):
            tensor += weights[u] * curves[u][np.newaxis, :, :]
        if population is None:
            return tensor[:, 0, :]
        return tensor

    def period_tensor_loop(
        self,
        temperatures_c: Sequence[float],
        technologies=None,
    ) -> np.ndarray:
        """Per-configuration reference path of :meth:`period_tensor`.

        Evaluates one ring at a time through the existing stacked delay
        path (:meth:`~repro.oscillator.ring.RingOscillator.period_series`
        / :meth:`~repro.oscillator.ring.RingOscillator.period_matrix`).
        This was the only way to sweep the configuration axis before the
        bank existed; it is retained as the oracle the configuration-axis
        equivalence tests (and benchmarks) compare the single-broadcast
        tensor against.
        """
        temps = np.asarray(temperatures_c, dtype=float)
        if technologies is None:
            return np.stack([ring.period_series(temps) for ring in self._rings])
        return np.stack(
            [ring.period_matrix(technologies, temps) for ring in self._rings]
        )


def _delay_per_farad(tech, cell: StandardCell, temperatures_c: np.ndarray):
    """Ring-stage delay contribution per farad of total output load.

    For a single-stage inverting cell the stage's period contribution is
    ``tpHL + tpLH = fit * L_total * Vdd * (1/I_pull_down + 1/I_pull_up)``
    (see :func:`repro.delay.alpha_power.gate_delay`), linear in the total
    load — so the whole temperature (and stacked sample) dependence is
    captured by this one load-independent curve.
    """
    options = cell.delay_options
    pull_down = DriveNetwork(
        polarity="nmos",
        width_um=cell.nmos_width_um,
        stack_depth=cell.topology.nmos_stack_depth,
    )
    pull_up = DriveNetwork(
        polarity="pmos",
        width_um=cell.pmos_width_um,
        stack_depth=cell.topology.pmos_stack_depth,
    )
    down = effective_saturation_current(tech, pull_down, temperatures_c, options)
    up = effective_saturation_current(tech, pull_up, temperatures_c, options)
    return options.fit_factor * tech.vdd * (1.0 / down + 1.0 / up)


def normalise_configurations(
    configurations,
) -> Tuple[Tuple[str, ...], Tuple[RingConfiguration, ...]]:
    """Resolve the accepted configuration-axis inputs to (labels, configs).

    Shared by :class:`ConfigurationBank` and
    :meth:`repro.engine.sweep.Axis.configuration`, so both ends of the
    configuration axis accept the same inputs (label mapping, or a
    sequence of configurations / parseable strings) and apply the same
    unique-label rule.
    """
    if isinstance(configurations, Mapping):
        items = list(configurations.items())
    else:
        items = []
        for entry in configurations:
            if isinstance(entry, str):
                entry = RingConfiguration.parse(entry)
            items.append((entry.label(), entry))
    if not items:
        raise ConfigurationError("a configuration bank needs at least one configuration")
    labels = [label for label, _ in items]
    if len(set(labels)) != len(labels):
        raise ConfigurationError(
            "configuration labels must be unique within a bank"
        )
    return tuple(labels), tuple(config for _, config in items)
