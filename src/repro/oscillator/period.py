"""Temperature-response helpers for ring oscillators.

The sensor characteristic is the mapping ``temperature -> period``; this
module provides the container for such a characteristic and the sweep
functions that produce it, either analytically (fast, used by the design
space exploration) or through transistor-level simulation (slow, used
for validation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..tech.parameters import TechnologyError
from .ring import RingOscillator

__all__ = [
    "TemperatureResponse",
    "default_temperature_grid",
    "paper_temperature_grid",
    "analytical_response",
    "simulated_response",
]


def default_temperature_grid(
    t_min_c: float = -50.0, t_max_c: float = 150.0, points: int = 41
) -> np.ndarray:
    """Dense uniform temperature grid over the paper's range."""
    if points < 2:
        raise TechnologyError("a temperature grid needs at least two points")
    if t_max_c <= t_min_c:
        raise TechnologyError("t_max_c must exceed t_min_c")
    return np.linspace(t_min_c, t_max_c, points)


def paper_temperature_grid() -> np.ndarray:
    """The nine temperatures the paper's figures mark on the x-axis."""
    return np.asarray([-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0])


@dataclass(frozen=True)
class TemperatureResponse:
    """A sampled ``temperature -> period`` characteristic.

    Attributes
    ----------
    label:
        Configuration label this response belongs to.
    temperatures_c:
        Strictly increasing temperatures (deg C).
    periods_s:
        Oscillation period at each temperature (seconds).
    """

    label: str
    temperatures_c: np.ndarray
    periods_s: np.ndarray

    def __post_init__(self) -> None:
        temps = np.asarray(self.temperatures_c, dtype=float)
        periods = np.asarray(self.periods_s, dtype=float)
        if temps.ndim != 1 or periods.ndim != 1 or temps.shape != periods.shape:
            raise TechnologyError("temperatures and periods must be matching 1-D arrays")
        if temps.size < 3:
            raise TechnologyError("a temperature response needs at least three points")
        if np.any(np.diff(temps) <= 0):
            raise TechnologyError("temperatures must be strictly increasing")
        if np.any(periods <= 0):
            raise TechnologyError("periods must be positive")
        object.__setattr__(self, "temperatures_c", temps)
        object.__setattr__(self, "periods_s", periods)

    # ------------------------------------------------------------------ #
    # derived characteristics
    # ------------------------------------------------------------------ #

    @property
    def frequencies_hz(self) -> np.ndarray:
        return 1.0 / self.periods_s

    def span_s(self) -> float:
        """Full-scale period span over the temperature range."""
        return float(self.periods_s[-1] - self.periods_s[0])

    def mean_sensitivity(self) -> float:
        """Average d(period)/dT (s/K) over the full range."""
        return self.span_s() / float(self.temperatures_c[-1] - self.temperatures_c[0])

    def relative_sensitivity(self) -> float:
        """Average (1/period) d(period)/dT (1/K) — a size-independent figure."""
        mid = float(np.interp(
            0.5 * (self.temperatures_c[0] + self.temperatures_c[-1]),
            self.temperatures_c,
            self.periods_s,
        ))
        return self.mean_sensitivity() / mid

    def is_monotonic(self) -> bool:
        """Whether the period increases monotonically with temperature."""
        return bool(np.all(np.diff(self.periods_s) > 0))

    def period_at(self, temperature_c: float) -> float:
        """Linearly interpolated period at an arbitrary temperature."""
        temps = self.temperatures_c
        if not temps[0] <= temperature_c <= temps[-1]:
            raise TechnologyError(
                f"temperature {temperature_c} C outside the response range "
                f"[{temps[0]}, {temps[-1]}]"
            )
        return float(np.interp(temperature_c, temps, self.periods_s))

    def subsampled(self, temperatures_c: Sequence[float]) -> "TemperatureResponse":
        """Response restricted (by interpolation) to a coarser grid."""
        temps = np.asarray(sorted(float(t) for t in temperatures_c))
        periods = np.asarray([self.period_at(t) for t in temps])
        return TemperatureResponse(self.label, temps, periods)


def analytical_response(
    ring: RingOscillator,
    temperatures_c: Optional[Sequence[float]] = None,
) -> TemperatureResponse:
    """Temperature response computed with the analytical delay model."""
    temps = (
        np.asarray(temperatures_c, dtype=float)
        if temperatures_c is not None
        else default_temperature_grid()
    )
    periods = ring.period_series(temps)
    return TemperatureResponse(ring.label(), temps, periods)


def simulated_response(
    ring: RingOscillator,
    temperatures_c: Sequence[float],
    cycles: float = 8.0,
    points_per_period: int = 300,
) -> TemperatureResponse:
    """Temperature response measured with the transistor-level simulator.

    Considerably slower than :func:`analytical_response`; intended for
    validation at a handful of temperatures.
    """
    temps = np.asarray(sorted(float(t) for t in temperatures_c))
    periods = np.asarray(
        [
            ring.simulated_period(float(t), cycles=cycles, points_per_period=points_per_period)
            for t in temps
        ]
    )
    return TemperatureResponse(ring.label(), temps, periods)
