"""Temperature-response helpers for ring oscillators.

The sensor characteristic is the mapping ``temperature -> period``; this
module provides the container for such a characteristic and the sweep
functions that produce it, either analytically (fast, used by the design
space exploration) or through transistor-level simulation (slow, used
for validation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..tech.parameters import TechnologyError
from .ring import RingOscillator

__all__ = [
    "TemperatureResponse",
    "default_temperature_grid",
    "paper_temperature_grid",
    "analytical_response",
    "simulated_response",
    "validate_temperature_grid",
]


def validate_temperature_grid(
    temperatures_c: Sequence[float], context: str = "temperature sweep"
) -> np.ndarray:
    """Validate and sort a user-supplied temperature grid up front.

    Returns the sorted grid; raises :class:`TechnologyError` with a
    clear message for the failure modes that used to surface late (or
    be silently papered over) in the sweep paths: fewer than three
    points, NaNs, and duplicate temperatures.  Duplicates are rejected
    rather than deduplicated so a caller's typo cannot silently shrink
    the grid below what they asked for.
    """
    temps = np.asarray(list(temperatures_c), dtype=float)
    if temps.ndim != 1:
        raise TechnologyError(
            f"{context}: temperatures must form a one-dimensional grid, "
            f"got shape {temps.shape}"
        )
    if temps.size < 3:
        raise TechnologyError(
            f"{context}: at least three temperatures are required, got {temps.size}"
        )
    if np.any(~np.isfinite(temps)):
        raise TechnologyError(
            f"{context}: temperatures must be finite (no NaN or infinity)"
        )
    temps = np.sort(temps)
    if np.any(np.diff(temps) == 0.0):
        duplicates = sorted(set(temps[1:][np.diff(temps) == 0.0].tolist()))
        raise TechnologyError(
            f"{context}: duplicate temperatures {duplicates}; each sweep "
            "point must be unique"
        )
    return temps


def default_temperature_grid(
    t_min_c: float = -50.0, t_max_c: float = 150.0, points: int = 41
) -> np.ndarray:
    """Dense uniform temperature grid over the paper's range."""
    if points < 2:
        raise TechnologyError("a temperature grid needs at least two points")
    if t_max_c <= t_min_c:
        raise TechnologyError("t_max_c must exceed t_min_c")
    return np.linspace(t_min_c, t_max_c, points)


def paper_temperature_grid() -> np.ndarray:
    """The nine temperatures the paper's figures mark on the x-axis."""
    return np.asarray([-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0])


@dataclass(frozen=True)
class TemperatureResponse:
    """A sampled ``temperature -> period`` characteristic.

    Attributes
    ----------
    label:
        Configuration label this response belongs to.
    temperatures_c:
        Strictly increasing temperatures (deg C).
    periods_s:
        Oscillation period at each temperature (seconds).
    """

    label: str
    temperatures_c: np.ndarray
    periods_s: np.ndarray

    def __post_init__(self) -> None:
        temps = np.asarray(self.temperatures_c, dtype=float)
        periods = np.asarray(self.periods_s, dtype=float)
        if temps.ndim != 1 or periods.ndim != 1 or temps.shape != periods.shape:
            raise TechnologyError("temperatures and periods must be matching 1-D arrays")
        if temps.size < 3:
            raise TechnologyError("a temperature response needs at least three points")
        if np.any(np.diff(temps) <= 0):
            raise TechnologyError("temperatures must be strictly increasing")
        if np.any(periods <= 0):
            raise TechnologyError("periods must be positive")
        object.__setattr__(self, "temperatures_c", temps)
        object.__setattr__(self, "periods_s", periods)

    # ------------------------------------------------------------------ #
    # derived characteristics
    # ------------------------------------------------------------------ #

    @property
    def frequencies_hz(self) -> np.ndarray:
        return 1.0 / self.periods_s

    def span_s(self) -> float:
        """Full-scale period span over the temperature range."""
        return float(self.periods_s[-1] - self.periods_s[0])

    def mean_sensitivity(self) -> float:
        """Average d(period)/dT (s/K) over the full range."""
        return self.span_s() / float(self.temperatures_c[-1] - self.temperatures_c[0])

    def relative_sensitivity(self) -> float:
        """Average (1/period) d(period)/dT (1/K) — a size-independent figure."""
        mid = float(np.interp(
            0.5 * (self.temperatures_c[0] + self.temperatures_c[-1]),
            self.temperatures_c,
            self.periods_s,
        ))
        return self.mean_sensitivity() / mid

    def is_monotonic(self) -> bool:
        """Whether the period increases monotonically with temperature."""
        return bool(np.all(np.diff(self.periods_s) > 0))

    def period_at(self, temperature_c: float) -> float:
        """Linearly interpolated period at an arbitrary temperature."""
        temps = self.temperatures_c
        if not temps[0] <= temperature_c <= temps[-1]:
            raise TechnologyError(
                f"temperature {temperature_c} C outside the response range "
                f"[{temps[0]}, {temps[-1]}]"
            )
        return float(np.interp(temperature_c, temps, self.periods_s))

    def subsampled(self, temperatures_c: Sequence[float]) -> "TemperatureResponse":
        """Response restricted (by interpolation) to a coarser grid.

        The grid is validated up front: at least three unique
        temperatures, all inside the response's characterised range.
        """
        temps = validate_temperature_grid(temperatures_c, context="subsampled grid")
        full = self.temperatures_c
        if temps[0] < full[0] or temps[-1] > full[-1]:
            raise TechnologyError(
                f"subsampled grid [{temps[0]}, {temps[-1]}] C extends outside "
                f"the response range [{full[0]}, {full[-1]}] C"
            )
        periods = np.interp(temps, full, self.periods_s)
        return TemperatureResponse(self.label, temps, periods)


def analytical_response(
    ring: RingOscillator,
    temperatures_c: Optional[Sequence[float]] = None,
    scalar: bool = False,
) -> TemperatureResponse:
    """Temperature response computed with the analytical delay model.

    Parameters
    ----------
    ring:
        The ring oscillator to sweep.
    temperatures_c:
        Sweep grid (the paper's -50..150 range by default).
    scalar:
        When true, evaluate one temperature at a time through the
        scalar reference path instead of the vectorized stage-sum —
        the oracle the batch engine's equivalence tests compare
        against.
    """
    temps = (
        np.asarray(temperatures_c, dtype=float)
        if temperatures_c is not None
        else default_temperature_grid()
    )
    periods = ring.period_series_scalar(temps) if scalar else ring.period_series(temps)
    return TemperatureResponse(ring.label(), temps, periods)


def simulated_response(
    ring: RingOscillator,
    temperatures_c: Sequence[float],
    cycles: float = 8.0,
    points_per_period: int = 300,
) -> TemperatureResponse:
    """Temperature response measured with the transistor-level simulator.

    Considerably slower than :func:`analytical_response`; intended for
    validation at a handful of temperatures.  The grid is validated up
    front (three or more unique temperatures) so a bad grid fails with a
    clear message *before* minutes of transient simulation are spent.
    """
    temps = validate_temperature_grid(temperatures_c, context="simulated_response grid")
    periods = np.asarray(
        [
            ring.simulated_period(float(t), cycles=cycles, points_per_period=points_per_period)
            for t in temps
        ]
    )
    return TemperatureResponse(ring.label(), temps, periods)
