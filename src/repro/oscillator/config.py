"""Ring-oscillator stage configurations.

The paper's central idea is that the ring does not have to be built from
inverters only: any mix of inverting standard cells works, and the mix
is a design knob for linearity.  A :class:`RingConfiguration` is an
ordered list of cell names (one per stage) with the structural rules a
ring oscillator must satisfy — an odd number of inverting stages.

Configurations can be written compactly in the same style the paper's
Fig. 3 caption uses, e.g. ``"3INV+2NAND3"`` or ``"5NAND2"``; the parser
and formatter here round-trip that notation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "ConfigurationError",
    "RingConfiguration",
    "PAPER_FIG3_CONFIGURATIONS",
    "paper_fig3_configurations",
]


class ConfigurationError(ValueError):
    """Raised for structurally invalid ring configurations."""


_GROUP_PATTERN = re.compile(r"^\s*(\d+)\s*([A-Za-z]+\d*)\s*$")


@dataclass(frozen=True)
class RingConfiguration:
    """An ordered list of stage cell names forming a ring oscillator."""

    stages: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.stages) < 3:
            raise ConfigurationError("a ring oscillator needs at least 3 stages")
        if len(self.stages) % 2 == 0:
            raise ConfigurationError(
                f"a ring oscillator needs an odd number of inverting stages, "
                f"got {len(self.stages)}"
            )
        normalised = tuple(stage.strip().upper() for stage in self.stages)
        if any(not stage for stage in normalised):
            raise ConfigurationError("stage names must not be empty")
        object.__setattr__(self, "stages", normalised)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def uniform(cls, cell_name: str, stage_count: int) -> "RingConfiguration":
        """A ring built from ``stage_count`` copies of one cell."""
        return cls(tuple([cell_name] * stage_count))

    @classmethod
    def from_counts(cls, counts: Sequence[Tuple[str, int]]) -> "RingConfiguration":
        """Build from ``[(cell_name, count), ...]`` groups in order."""
        stages: List[str] = []
        for cell_name, count in counts:
            if count < 0:
                raise ConfigurationError("stage counts must be non-negative")
            stages.extend([cell_name] * count)
        return cls(tuple(stages))

    @classmethod
    def parse(cls, text: str) -> "RingConfiguration":
        """Parse the compact ``"3INV+2NAND3"`` notation.

        Groups are separated by ``+``; each group is a count followed by
        a cell name.  A bare cell name counts as one stage.
        """
        if not text or not text.strip():
            raise ConfigurationError("empty configuration string")
        counts: List[Tuple[str, int]] = []
        for group in text.split("+"):
            group = group.strip()
            if not group:
                raise ConfigurationError(f"empty group in configuration {text!r}")
            match = _GROUP_PATTERN.match(group)
            if match:
                count = int(match.group(1))
                name = match.group(2)
            else:
                count = 1
                name = group
            if count == 0:
                raise ConfigurationError(f"group {group!r} has a zero count")
            counts.append((name, count))
        return cls.from_counts(counts)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def stage_count(self) -> int:
        return len(self.stages)

    def counts(self) -> Dict[str, int]:
        """Number of stages per cell name (order-insensitive summary)."""
        summary: Dict[str, int] = {}
        for stage in self.stages:
            summary[stage] = summary.get(stage, 0) + 1
        return summary

    def label(self) -> str:
        """Compact label in the paper's ``2INV+3NAND2`` style.

        Consecutive runs of the same cell are grouped; the order of the
        groups follows the stage order.
        """
        groups: List[Tuple[str, int]] = []
        for stage in self.stages:
            if groups and groups[-1][0] == stage:
                groups[-1] = (stage, groups[-1][1] + 1)
            else:
                groups.append((stage, 1))
        return "+".join(f"{count}{name}" for name, count in groups)

    def is_uniform(self) -> bool:
        return len(set(self.stages)) == 1

    def with_stage_count(self, stage_count: int) -> "RingConfiguration":
        """Scale a uniform configuration to a different stage count."""
        if not self.is_uniform():
            raise ConfigurationError(
                "with_stage_count is only defined for uniform configurations"
            )
        return RingConfiguration.uniform(self.stages[0], stage_count)

    def __str__(self) -> str:
        return self.label()


def paper_fig3_configurations() -> Dict[str, RingConfiguration]:
    """The cell-mix configurations evaluated in the paper's Fig. 3.

    The scanned caption is partially garbled; the set below is the
    reconstruction documented in EXPERIMENTS.md: the plain 5-inverter
    ring, the two NAND-flavoured mixes, the NAND-only ring, and the two
    NOR-flavoured mixes.  All are 5-stage rings like the paper's.
    """
    texts = [
        "5INV",
        "3INV+2NAND3",
        "3NAND3+2NOR2",
        "2INV+3NAND2",
        "5NAND2",
        "2INV+3NOR2",
    ]
    return {text: RingConfiguration.parse(text) for text in texts}


#: Mapping of label -> configuration used by the Fig. 3 reproduction.
PAPER_FIG3_CONFIGURATIONS: Dict[str, RingConfiguration] = paper_fig3_configurations()
