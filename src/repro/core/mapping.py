"""Thermal monitoring of a die with distributed smart sensors.

This module closes the loop the paper sketches: ring-oscillator sensors
are placed at several points of a floorplan, the die's temperature field
is computed from its power map with the compact thermal model, each
sensor reads its *local* junction temperature through the multiplexed
smart unit, and the monitor reconstructs a full-die thermal map from the
sparse sensor readings.  The reconstruction error against the true field
quantifies how many sensors a thermal-mapping application needs — one of
the design questions the smart unit's multiplexer exists to answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..cells.library import CellLibrary, default_library
from ..oscillator.config import RingConfiguration
from ..oscillator.ring import RingOscillator
from ..tech.parameters import Technology, TechnologyError
from ..thermal.floorplan import Floorplan, SensorSite
from ..thermal.grid import TemperatureMap, ThermalGrid, ThermalGridParameters
from ..thermal.power import PowerMap
from ..thermal.solver import solve_steady_state
from .multiplexer import ScanResult, SensorMultiplexer
from .readout import ReadoutConfig
from .sensor import SensorTransferFunction, SmartTemperatureSensor
from .sensor_bank import BankScan, SensorBank

__all__ = ["ThermalMonitorReport", "ThermalMonitor", "reconstruct_maps"]


def reconstruct_maps(
    reference: TemperatureMap,
    site_x_mm: np.ndarray,
    site_y_mm: np.ndarray,
    estimates_c: np.ndarray,
) -> np.ndarray:
    """Inverse-distance maps for one or many estimate columns at once.

    The thermal monitor's reconstruction kernel, factored out so the
    Monte-Carlo studies can rebuild *every sample's* full-die map in one
    broadcast: ``estimates_c`` of shape ``(site,)`` returns one
    ``(ny, nx)`` value array, ``(site, k)`` returns a ``(k, ny, nx)``
    stack.  The inverse-square weights depend only on geometry, so they
    are computed once for the whole stack; a grid cell sitting exactly
    on a sensor site takes that site's estimate directly (first matching
    site).
    """
    estimates = np.asarray(estimates_c, dtype=float)
    single = estimates.ndim == 1
    columns = estimates.reshape(len(site_x_mm), -1)

    cell_w = reference.width_mm / reference.nx
    cell_h = reference.height_mm / reference.ny
    xs = (np.arange(reference.nx) + 0.5) * cell_w
    ys = (np.arange(reference.ny) + 0.5) * cell_h
    grid_x, grid_y = np.meshgrid(xs, ys)

    distance = np.hypot(
        grid_x[..., np.newaxis] - np.asarray(site_x_mm),
        grid_y[..., np.newaxis] - np.asarray(site_y_mm),
    )
    exact = distance < 1e-9
    with np.errstate(divide="ignore", invalid="ignore"):
        weights = 1.0 / distance**2
        weights[exact] = 0.0
        values = np.einsum("yxs,sk->kyx", weights, columns)
        # 0/0 where a cell's only weights were zeroed by the exact-match
        # mask; those cells are overwritten by the on-site pass below.
        values /= np.sum(weights, axis=-1)

    on_site = exact.any(axis=-1)
    if np.any(on_site):
        first_site = np.argmax(exact, axis=-1)
        values[:, on_site] = columns[first_site[on_site]].T
    if single:
        return values[0]
    return values


@dataclass(frozen=True)
class ThermalMonitorReport:
    """Result of one thermal-mapping scan.

    Attributes
    ----------
    scan:
        The raw scan: a :class:`~repro.core.sensor_bank.BankScan` from
        the banked path (the default) or the multiplexer's
        :class:`~repro.core.multiplexer.ScanResult` from the retained
        per-sensor oracle path; both expose ``readings`` and
        ``total_time_s``.
    true_map:
        The reference temperature field from the thermal model.
    site_true_temperatures_c:
        True junction temperature at every sensor site.
    site_estimates_c:
        Calibrated sensor estimate at every site.
    reconstructed_map:
        Full-die map reconstructed from the sensor estimates.
    """

    scan: Union[BankScan, ScanResult]
    true_map: TemperatureMap
    site_true_temperatures_c: Dict[str, float]
    site_estimates_c: Dict[str, float]
    reconstructed_map: TemperatureMap

    def site_errors_c(self) -> Dict[str, float]:
        """Per-site measurement error (estimate minus truth)."""
        return {
            name: self.site_estimates_c[name] - self.site_true_temperatures_c[name]
            for name in self.site_estimates_c
        }

    def worst_site_error_c(self) -> float:
        errors = list(self.site_errors_c().values())
        return float(np.max(np.abs(errors)))

    def hotspot_error_c(self) -> float:
        """Error of the reconstructed map at the true hotspot location."""
        x, y = self.true_map.hotspot_location()
        return self.reconstructed_map.sample(x, y) - self.true_map.max_c()

    def map_rms_error_c(self) -> float:
        """RMS error of the reconstructed field over the whole die."""
        difference = self.reconstructed_map.values_c - self.true_map.values_c
        return float(np.sqrt(np.mean(difference ** 2)))


class ThermalMonitor:
    """Distributed smart-sensor thermal-mapping unit.

    Parameters
    ----------
    technology:
        CMOS technology of the sensors.
    floorplan:
        Die floorplan; its sensor sites define where sensors are placed.
    configuration:
        Ring configuration used for every sensor (the paper's optimised
        cell mix).
    library:
        Cell library; the default library of the technology when omitted.
    readout:
        Shared readout configuration.
    grid_resolution:
        Resolution of the thermal model grid.
    ambient_c:
        Package/board ambient temperature.
    """

    def __init__(
        self,
        technology: Technology,
        floorplan: Floorplan,
        configuration: RingConfiguration,
        library: Optional[CellLibrary] = None,
        readout: ReadoutConfig = ReadoutConfig(),
        grid_resolution: int = 32,
        ambient_c: float = 45.0,
        thermal_parameters: ThermalGridParameters = ThermalGridParameters(),
    ) -> None:
        sites = floorplan.sensor_sites()
        if not sites:
            raise TechnologyError(
                "the floorplan has no sensor sites; call add_sensor_site/add_sensor_grid first"
            )
        self.technology = technology
        self.floorplan = floorplan
        self.configuration = configuration
        self.library = library if library is not None else default_library(technology)
        self.readout = readout
        self.ambient_c = float(ambient_c)
        self.grid_resolution = int(grid_resolution)
        self.thermal_parameters = thermal_parameters

        sensors: List[SmartTemperatureSensor] = []
        for site in sites:
            ring = RingOscillator(self.library, configuration)
            sensors.append(
                SmartTemperatureSensor(ring, readout=readout, name=site.name)
            )
        self.multiplexer = SensorMultiplexer(sensors)
        self.bank = SensorBank(self.library, sites, configuration, readout=readout)
        self._sites: Dict[str, SensorSite] = {site.name: site for site in sites}
        self._grid: Optional[ThermalGrid] = None
        self._grid_key: Optional[Tuple[float, float, int, int]] = None

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #

    def calibrate(self, low_temperature_c: float = -40.0, high_temperature_c: float = 125.0) -> None:
        """Two-point calibrate every sensor in the bank.

        The calibration runs once through the banked path (the sites
        share one ring design, so one vectorized two-point evaluation
        covers the whole bank) and the resulting line is installed into
        every multiplexer channel as well — the per-sensor scalar
        pipeline produces exactly the same line, which
        ``tests/test_sensor_bank.py`` pins.
        """
        calibration = self.bank.calibrate(low_temperature_c, high_temperature_c)
        for sensor in self.multiplexer.sensors():
            sensor.install_calibration(calibration.linear_calibration())

    def sensor_sites(self) -> List[SensorSite]:
        return list(self._sites.values())

    def characterize(
        self, temperatures_c: Optional[Sequence[float]] = None, evaluator=None
    ) -> Dict[str, "SensorTransferFunction"]:
        """Transfer function of every sensor in the bank, keyed by site.

        Runs through the vectorized batch engine by default — one
        vectorized sweep per sensor instead of a scalar loop per
        temperature — which is what makes characterising large sensor
        grids cheap.
        """
        # Imported lazily: repro.engine imports the sensor layer, so a
        # module-level import here would be circular.
        from ..engine.batch import BatchEvaluator

        engine = evaluator if evaluator is not None else BatchEvaluator()
        return engine.transfer_functions(
            list(self.multiplexer.sensors()), temperatures_c
        )

    # ------------------------------------------------------------------ #
    # thermal field
    # ------------------------------------------------------------------ #

    def _grid_for(self, power: PowerMap) -> ThermalGrid:
        """The thermal grid of a power map (cached per geometry).

        Repeated scans of same-resolution workloads reuse both the grid
        matrices and — through the process-wide
        :class:`~repro.thermal.operator.ThermalOperator` cache — their
        sparse-direct factorization.
        """
        key = (power.width_mm, power.height_mm, power.nx, power.ny)
        if self._grid is None or self._grid_key != key:
            self._grid = ThermalGrid.for_power_map(power, self.thermal_parameters)
            self._grid_key = key
        return self._grid

    def temperature_field(self, power: PowerMap) -> TemperatureMap:
        """Reference temperature field for a workload power map."""
        return solve_steady_state(self._grid_for(power), power, self.ambient_c)

    def power_map_for_floorplan(self) -> PowerMap:
        """Rasterised power map of the monitor's floorplan."""
        return PowerMap.from_floorplan(
            self.floorplan, nx=self.grid_resolution, ny=self.grid_resolution
        )

    # ------------------------------------------------------------------ #
    # monitoring
    # ------------------------------------------------------------------ #

    def scan(
        self, power: Optional[PowerMap] = None, scalar: bool = False
    ) -> ThermalMonitorReport:
        """Run one full thermal-mapping scan for a workload.

        The true temperature field is computed from the power map, each
        sensor is fed the local junction temperature at its site, the
        bank scans all channels, and a full-die map is rebuilt from the
        sensor estimates by inverse-distance interpolation.

        The default path is fully banked: one vectorized gather of the
        site temperatures (:meth:`TemperatureMap.sample_points`), one
        broadcast :meth:`~repro.core.sensor_bank.SensorBank.scan` for
        the whole bank.  ``scalar=True`` keeps the original per-sensor
        multiplexer loop as the reference oracle for the equivalence
        tests.
        """
        if power is None:
            power = self.power_map_for_floorplan()
        true_map = self.temperature_field(power)

        if scalar:
            site_truth: Dict[str, float] = {}
            for name, site in self._sites.items():
                site_truth[name] = true_map.sample(site.x_mm, site.y_mm)

            scan = self.multiplexer.scan(site_truth)

            site_estimates: Dict[str, float] = {}
            for name, reading in scan.readings.items():
                if reading.temperature_estimate_c is None:
                    raise TechnologyError(
                        "sensors must be calibrated before a thermal-mapping "
                        "scan; call calibrate() first"
                    )
                site_estimates[name] = reading.temperature_estimate_c
        else:
            if self.bank.calibration is None:
                raise TechnologyError(
                    "sensors must be calibrated before a thermal-mapping scan; "
                    "call calibrate() first"
                )
            xs, ys = self.bank.positions()
            truths = true_map.sample_points(xs, ys)
            scan = self.bank.scan(truths)
            site_truth = dict(zip(scan.names, (float(t) for t in truths)))
            site_estimates = {
                name: float(estimate)
                for name, estimate in zip(scan.names, scan.estimates_c)
            }

        reconstructed = self._reconstruct(site_estimates, true_map)
        return ThermalMonitorReport(
            scan=scan,
            true_map=true_map,
            site_true_temperatures_c=site_truth,
            site_estimates_c=site_estimates,
            reconstructed_map=reconstructed,
        )

    def _reconstruct(
        self, site_estimates: Dict[str, float], reference: TemperatureMap
    ) -> TemperatureMap:
        """Inverse-distance-weighted interpolation of the sensor readings.

        One :func:`reconstruct_maps` broadcast over the whole
        ``(ny, nx, n_sites)`` distance tensor instead of a Python loop
        per grid cell — the batch-engine treatment of the
        reconstruction hot path.
        """
        names = list(site_estimates)
        site_x = np.asarray([self._sites[name].x_mm for name in names])
        site_y = np.asarray([self._sites[name].y_mm for name in names])
        estimates = np.asarray([site_estimates[name] for name in names])
        values = reconstruct_maps(reference, site_x, site_y, estimates)
        return TemperatureMap(reference.width_mm, reference.height_mm, values)

    def detect_overheating(
        self, report: ThermalMonitorReport, threshold_c: float
    ) -> List[str]:
        """Names of sensor sites whose estimate exceeds a thermal threshold.

        This is the hook a dynamic thermal-management policy (clock
        throttling, task migration) would consume.
        """
        return [
            name
            for name, estimate in report.site_estimates_c.items()
            if estimate >= threshold_c
        ]
