"""Stacked sensor banks: the site axis of the batch engine.

The thermal-mapping and DTM layers read a *bank* of identical smart
sensors — one per floorplan site — through a multiplexer.  Before this
module a full scan cost one Python pass per sensor: a scalar ring-period
evaluation, a controller FSM walk (hundreds of reference-clock steps)
and a scalar counter conversion, repeated for every site and, in
Monte-Carlo studies, for every technology sample.

A :class:`SensorBank` stores the bank struct-of-arrays style instead:
the sites share one ring design (exactly as the multiplexed hardware
shares one readout), so a full scan is

* one vectorized period evaluation over the ``(site,)`` junction-
  temperature vector — or, against a stacked
  :class:`~repro.tech.stacked.TechnologyArray` population, one
  broadcast over ``(site, 1, 1)`` temperatures x ``(samples, 1)``
  parameter columns giving the whole ``(site, sample)`` period matrix,
* one batch counter conversion (:meth:`PeriodCounter.convert_batch`,
  which produces exactly the scalar path's codes), and
* one elementwise calibration map.

The controller FSM is walked **once** at construction to pin the
per-measurement conversion time; since every measurement of the bank
takes the same deterministic cycle count, the scan total is that time
multiplied by the channel count — identical to summing the per-sensor
readings.

The pre-existing per-sensor pipeline (build a
:class:`~repro.core.sensor.SmartTemperatureSensor` per site, two-point
calibrate it, ``measure`` each site in turn) is retained as
:meth:`SensorBank.scan_loop` / :meth:`SensorBank.period_tensor_loop`,
the oracle the equivalence tests pin the banked path against (estimates
to 1e-9 relative, counter codes exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cells.library import CellLibrary, default_library
from ..oscillator.config import RingConfiguration
from ..oscillator.ring import RingOscillator
from ..tech.parameters import Technology, TechnologyError
from ..tech.stacked import TechnologyArray, stack_technologies
from ..thermal.floorplan import Floorplan, SensorSite
from .calibration import LinearCalibration
from .controller import ControllerConfig, MeasurementController
from .readout import PeriodCounter, ReadoutConfig
from .sensor import SensorReading, SmartTemperatureSensor

__all__ = ["BankCalibration", "BankScan", "SensorBank"]


@dataclass(frozen=True)
class BankCalibration:
    """Vectorized two-point calibration of a whole sensor bank.

    ``slope_c_per_second`` / ``offset_c`` are ndarrays that broadcast
    against the bank's measured-period tensors: scalars for a uniform
    (single-technology) bank, ``(samples,)`` rows for a per-sample
    Monte-Carlo calibration.  The arithmetic matches
    :func:`repro.core.calibration.two_point_calibration` element for
    element.
    """

    slope_c_per_second: np.ndarray
    offset_c: np.ndarray
    low_temperature_c: float
    high_temperature_c: float

    def __post_init__(self) -> None:
        slope = np.asarray(self.slope_c_per_second, dtype=float)
        offset = np.asarray(self.offset_c, dtype=float)
        if np.any(slope == 0.0):
            raise TechnologyError("calibration slope must be non-zero")
        object.__setattr__(self, "slope_c_per_second", slope)
        object.__setattr__(self, "offset_c", offset)

    @property
    def sample_count(self) -> int:
        """Number of per-sample calibrations (1 for a uniform bank)."""
        return int(np.asarray(self.slope_c_per_second).size)

    def estimate(self, measured_periods_s: np.ndarray) -> np.ndarray:
        """Temperature estimates for a measured-period tensor."""
        periods = np.asarray(measured_periods_s, dtype=float)
        return self.slope_c_per_second * periods + self.offset_c

    def linear_calibration(self, sample: int = 0) -> LinearCalibration:
        """Unstack one sample's calibration into the scalar object."""
        slope = np.asarray(self.slope_c_per_second).reshape(-1)
        offset = np.asarray(self.offset_c).reshape(-1)
        index = sample if slope.size > 1 else 0
        return LinearCalibration(
            slope_c_per_second=float(slope[index]),
            offset_c=float(offset[index if offset.size > 1 else 0]),
            kind="two-point",
        )


@dataclass(frozen=True)
class BankScan:
    """One banked multiplexer scan: every channel's reading as arrays.

    All value arrays share the leading ``site`` axis; against a stacked
    technology population they are ``(site, sample)`` matrices.
    ``estimates_c`` is ``None`` when the bank was scanned uncalibrated.
    """

    names: Tuple[str, ...]
    true_temperatures_c: np.ndarray
    periods_s: np.ndarray
    codes: np.ndarray
    saturated: np.ndarray
    measured_periods_s: np.ndarray
    estimates_c: Optional[np.ndarray]
    conversion_time_s: float

    @property
    def site_count(self) -> int:
        return len(self.names)

    @property
    def total_time_s(self) -> float:
        """Scan duration: the shared readout serves one channel at a time."""
        return self.site_count * self.conversion_time_s

    def _require_single(self) -> None:
        if np.asarray(self.periods_s).ndim != 1:
            raise TechnologyError(
                "per-channel dictionaries are only defined for single-"
                "technology scans; index the (site, sample) arrays instead"
            )

    def codes_by_site(self) -> Dict[str, int]:
        self._require_single()
        return {name: int(code) for name, code in zip(self.names, self.codes)}

    def temperatures(self) -> Dict[str, Optional[float]]:
        self._require_single()
        if self.estimates_c is None:
            return {name: None for name in self.names}
        return {
            name: float(estimate)
            for name, estimate in zip(self.names, self.estimates_c)
        }

    def hottest_channel(self) -> str:
        """Channel with the highest estimated (or true) temperature."""
        self._require_single()
        values = (
            self.estimates_c if self.estimates_c is not None else self.true_temperatures_c
        )
        return self.names[int(np.argmax(values))]

    @property
    def readings(self) -> Dict[str, SensorReading]:
        """Per-channel :class:`SensorReading` view (single-technology scans).

        Materialised from the scan arrays so existing consumers of the
        multiplexer's ``ScanResult.readings`` keep working against the
        banked path.
        """
        self._require_single()
        result: Dict[str, SensorReading] = {}
        for index, name in enumerate(self.names):
            estimate = (
                float(self.estimates_c[index]) if self.estimates_c is not None else None
            )
            result[name] = SensorReading(
                code=int(self.codes[index]),
                saturated=bool(self.saturated[index]),
                conversion_time_s=self.conversion_time_s,
                oscillator_period_s=float(self.periods_s[index]),
                measured_period_s=float(self.measured_periods_s[index]),
                temperature_estimate_c=estimate,
                true_temperature_c=float(self.true_temperatures_c[index]),
            )
        return result


class SensorBank:
    """All sensor sites of a floorplan stacked for one-shot batch scans.

    Parameters
    ----------
    library:
        Cell library the shared ring design draws its stages from.
    sites:
        The sensor sites (name + die coordinates); names must be unique.
    configuration:
        Ring configuration shared by every sensor in the bank.
    readout / controller_config:
        Shared readout and measurement-controller configuration.
    wire_length_um / external_load_f / tap_stage:
        Ring construction parameters, matching
        :class:`~repro.oscillator.ring.RingOscillator`.
    """

    def __init__(
        self,
        library: CellLibrary,
        sites: Sequence[SensorSite],
        configuration: RingConfiguration,
        readout: ReadoutConfig = ReadoutConfig(),
        controller_config: ControllerConfig = ControllerConfig(),
        wire_length_um: float = 2.0,
        external_load_f: float = 0.0,
        tap_stage: Optional[int] = None,
    ) -> None:
        sites = list(sites)
        if not sites:
            raise TechnologyError("a sensor bank needs at least one site")
        names = [site.name for site in sites]
        if len(names) != len(set(names)):
            raise TechnologyError("sensor site names must be unique within a bank")
        self.library = library
        self.configuration = configuration
        self.readout = readout
        self.controller_config = controller_config
        self.ring = RingOscillator(
            library,
            configuration,
            wire_length_um=wire_length_um,
            external_load_f=external_load_f,
            tap_stage=tap_stage,
        )
        self.counter = PeriodCounter(readout)
        self._sites: Tuple[SensorSite, ...] = tuple(sites)
        self._names: Tuple[str, ...] = tuple(names)
        self._calibration: Optional[BankCalibration] = None
        # One controller FSM walk pins the deterministic per-measurement
        # cycle count the whole bank shares; the banked scan never steps
        # the FSM again.
        self._cycles_per_measurement = MeasurementController(
            readout, controller_config
        ).run_measurement()

    @classmethod
    def from_floorplan(
        cls,
        technology: Technology,
        floorplan: Floorplan,
        configuration: RingConfiguration,
        library: Optional[CellLibrary] = None,
        **kwargs,
    ) -> "SensorBank":
        """Build a bank covering every sensor site of a floorplan."""
        sites = floorplan.sensor_sites()
        if not sites:
            raise TechnologyError(
                "the floorplan has no sensor sites; call "
                "add_sensor_site/add_sensor_grid first"
            )
        lib = library if library is not None else default_library(technology)
        return cls(lib, sites, configuration, **kwargs)

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    @property
    def site_count(self) -> int:
        return len(self._sites)

    def __len__(self) -> int:
        return self.site_count

    @property
    def technology(self):
        return self.library.technology

    def names(self) -> Tuple[str, ...]:
        return self._names

    def sites(self) -> List[SensorSite]:
        return list(self._sites)

    def positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """(x, y) millimetre coordinate arrays of the sites."""
        xs = np.asarray([site.x_mm for site in self._sites])
        ys = np.asarray([site.y_mm for site in self._sites])
        return xs, ys

    @property
    def conversion_time_s(self) -> float:
        """Duration of one measurement (controller FSM cycle count)."""
        return self._cycles_per_measurement / self.readout.reference_clock_hz

    @property
    def calibration(self) -> Optional[BankCalibration]:
        return self._calibration

    # ------------------------------------------------------------------ #
    # banked evaluation
    # ------------------------------------------------------------------ #

    def _site_temperatures(self, junction_temperatures_c) -> np.ndarray:
        temps = np.asarray(junction_temperatures_c, dtype=float)
        if temps.shape != (self.site_count,):
            raise TechnologyError(
                f"expected one junction temperature per site "
                f"({self.site_count}), got shape {temps.shape}"
            )
        if np.any(~np.isfinite(temps)):
            raise TechnologyError("junction temperatures must be finite")
        return temps

    def period_tensor(self, junction_temperatures_c, technologies=None) -> np.ndarray:
        """Oscillation periods of every site in one broadcast pass.

        Returns a ``(site,)`` vector — or the full ``(site, sample)``
        matrix when ``technologies`` is a population (a stacked
        :class:`~repro.tech.stacked.TechnologyArray` or a stackable
        technology sequence; unstackable sequences fall back to the
        per-sample loop).  The sites share one ring design, so the whole
        scan is a single vectorized stage-sum over the junction-
        temperature vector.
        """
        temps = self._site_temperatures(junction_temperatures_c)
        if technologies is None:
            return np.asarray(self.ring.period_series(temps), dtype=float)
        if not isinstance(technologies, TechnologyArray):
            try:
                technologies = stack_technologies(list(technologies))
            except TechnologyError:
                return self.period_tensor_loop(temps, technologies)
        bound = self.ring.rebind(technologies)
        # (site, 1, 1) temperatures against (sample, 1) parameter columns
        # broadcast to (site, sample, 1); the trailing singleton is the
        # collapsed temperature axis of the stacked delay stack.
        matrix = bound.period_series(temps.reshape(-1, 1, 1))
        return np.asarray(matrix, dtype=float).reshape(
            self.site_count, len(technologies)
        )

    def period_tensor_loop(
        self, junction_temperatures_c, technologies=None
    ) -> np.ndarray:
        """Per-site (and per-sample) reference path of :meth:`period_tensor`.

        One scalar ring evaluation per site — and, with a population,
        one ring rebind per sample — exactly the pre-bank multiplexer
        cost.  Retained as the equivalence oracle.
        """
        temps = self._site_temperatures(junction_temperatures_c)
        if technologies is None:
            return np.asarray([self.ring.period(float(t)) for t in temps])
        if isinstance(technologies, TechnologyArray):
            technologies = technologies.technologies()
        matrix = np.zeros((self.site_count, len(technologies)))
        for column, technology in enumerate(technologies):
            ring = self.ring.rebind(technology)
            matrix[:, column] = [ring.period(float(t)) for t in temps]
        return matrix

    def measured_period_tensor(
        self, junction_temperatures_c, technologies=None
    ) -> np.ndarray:
        """Counter-quantised period estimates of every site (one batch)."""
        periods = self.period_tensor(junction_temperatures_c, technologies)
        codes, _saturated = self.counter.convert_batch(periods)
        return self.counter.codes_to_periods(codes)

    # ------------------------------------------------------------------ #
    # calibration
    # ------------------------------------------------------------------ #

    def two_point_calibration(
        self,
        low_temperature_c: float = -40.0,
        high_temperature_c: float = 125.0,
        technologies=None,
    ) -> BankCalibration:
        """Vectorized two-point calibration of the bank.

        The calibration insertions are at shared oven temperatures, so
        one two-point ring evaluation covers every site; against a
        population the result carries one (slope, offset) pair per
        sample — the whole Monte-Carlo calibration in a single
        ``(sample, 2)`` broadcast.  Matches
        :meth:`~repro.core.sensor.SmartTemperatureSensor.calibrate_two_point`
        element for element.
        """
        low = float(low_temperature_c)
        high = float(high_temperature_c)
        if low == high:
            raise TechnologyError("calibration temperatures must differ")
        endpoints = np.asarray([low, high])
        if technologies is None:
            periods = np.asarray(self.ring.period_series(endpoints))
        else:
            if not isinstance(technologies, TechnologyArray):
                technologies = stack_technologies(list(technologies))
            periods = np.asarray(self.ring.rebind(technologies).period_series(endpoints))
        codes, _saturated = self.counter.convert_batch(periods)
        measured = self.counter.codes_to_periods(codes)
        period_low = measured[..., 0]
        period_high = measured[..., 1]
        if np.any(period_low == period_high):
            raise TechnologyError("calibration periods must differ")
        slope = (high - low) / (period_high - period_low)
        offset = low - slope * period_low
        return BankCalibration(
            slope_c_per_second=slope,
            offset_c=offset,
            low_temperature_c=low,
            high_temperature_c=high,
        )

    def calibrate(
        self, low_temperature_c: float = -40.0, high_temperature_c: float = 125.0
    ) -> BankCalibration:
        """Install the bank's own two-point calibration (shared design)."""
        self._calibration = self.two_point_calibration(
            low_temperature_c, high_temperature_c
        )
        return self._calibration

    # ------------------------------------------------------------------ #
    # scanning
    # ------------------------------------------------------------------ #

    def scan(
        self,
        junction_temperatures_c,
        technologies=None,
        calibration: Optional[BankCalibration] = None,
    ) -> BankScan:
        """Measure every channel in one broadcast pass.

        Parameters
        ----------
        junction_temperatures_c:
            One junction temperature per site, in site order.
        technologies:
            Optional technology population; the scan then returns
            ``(site, sample)`` arrays.
        calibration:
            Calibration override; the bank's installed calibration is
            used when omitted, and estimates are ``None`` when neither
            exists.
        """
        temps = self._site_temperatures(junction_temperatures_c)
        calibration = calibration if calibration is not None else self._calibration
        periods = self.period_tensor(temps, technologies)
        codes, saturated = self.counter.convert_batch(periods)
        measured = self.counter.codes_to_periods(codes)
        estimates = calibration.estimate(measured) if calibration is not None else None
        return BankScan(
            names=self._names,
            true_temperatures_c=temps,
            periods_s=periods,
            codes=codes,
            saturated=saturated,
            measured_periods_s=measured,
            estimates_c=estimates,
            conversion_time_s=self.conversion_time_s,
        )

    def scan_loop(
        self,
        junction_temperatures_c,
        technologies=None,
        calibrate_at: Optional[Tuple[float, float]] = None,
    ) -> BankScan:
        """Per-sensor reference path of :meth:`scan` (the oracle).

        Builds one :class:`~repro.core.sensor.SmartTemperatureSensor`
        per site (per sample, with a population), optionally two-point
        calibrates each through its own scalar pipeline, and runs one
        full ``measure`` — controller FSM included — per channel,
        exactly as the multiplexer did before the bank existed.
        """
        temps = self._site_temperatures(junction_temperatures_c)
        if technologies is None:
            rings = [self.ring]
        elif isinstance(technologies, TechnologyArray):
            rings = [self.ring.rebind(t) for t in technologies.technologies()]
        else:
            rings = [self.ring.rebind(t) for t in technologies]

        columns: List[Dict[str, np.ndarray]] = []
        conversion_time = None
        for ring in rings:
            periods, codes, saturated, measured, estimates = [], [], [], [], []
            for name, temperature in zip(self._names, temps):
                sensor = SmartTemperatureSensor(
                    ring,
                    readout=self.readout,
                    controller_config=self.controller_config,
                    name=name,
                )
                if calibrate_at is not None:
                    sensor.calibrate_two_point(*calibrate_at)
                reading = sensor.measure(float(temperature))
                conversion_time = reading.conversion_time_s
                periods.append(reading.oscillator_period_s)
                codes.append(reading.code)
                saturated.append(reading.saturated)
                measured.append(reading.measured_period_s)
                estimates.append(reading.temperature_estimate_c)
            columns.append(
                dict(
                    periods=np.asarray(periods),
                    codes=np.asarray(codes),
                    saturated=np.asarray(saturated),
                    measured=np.asarray(measured),
                    estimates=(
                        np.asarray(estimates, dtype=float)
                        if estimates[0] is not None
                        else None
                    ),
                )
            )

        def gather(key):
            if columns[0][key] is None:
                return None
            if technologies is None:
                return columns[0][key]
            return np.stack([column[key] for column in columns], axis=1)

        return BankScan(
            names=self._names,
            true_temperatures_c=temps,
            periods_s=gather("periods"),
            codes=gather("codes"),
            saturated=gather("saturated"),
            measured_periods_s=gather("measured"),
            estimates_c=gather("estimates"),
            conversion_time_s=conversion_time,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SensorBank({self.site_count} sites, ring={self.ring.label()!r}, "
            f"calibrated={self._calibration is not None})"
        )
