"""Calibration of the measured-period-to-temperature transfer function.

The smart unit's counter produces a code that is inversely proportional
to the oscillation period (cycles counted in a fixed window).  The
digital processing block therefore first converts the code back into a
*period estimate* (one fixed-point division by the known window) and
then applies a calibration that maps period to temperature.  Working in
the period domain is what makes the paper's linearity results usable: the
period — not its reciprocal — is the quantity that is linear in
temperature.

Three calibration schemes are modelled, in increasing per-die cost:

``design`` (zero-point)
    Use the transfer function predicted at design time (typical
    process).  Free, but the full process spread lands in the error.

``one-point``
    Measure the period at one known temperature, keep the design-time
    slope.  Removes the offset component of process variation.

``two-point``
    Measure at two known temperatures and fit the line through them.
    Removes offset and slope errors; what remains is the sensor's
    intrinsic non-linearity — the quantity the paper's Fig. 2 / Fig. 3
    minimise — plus readout quantisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from ..tech.parameters import TechnologyError

__all__ = [
    "CalibrationError",
    "LinearCalibration",
    "PolynomialCalibration",
    "two_point_calibration",
    "one_point_calibration",
    "design_calibration",
    "fit_polynomial_calibration",
]


class CalibrationError(ValueError):
    """Raised when a calibration cannot be constructed or applied."""


@dataclass(frozen=True)
class LinearCalibration:
    """A linear period-to-temperature map ``T = slope * period + offset``.

    ``slope_c_per_second`` is the inverse of the sensor's sensitivity
    (kelvin per second of period change); for the default 5-stage rings
    it is of the order of 1e12 C/s because the period moves by roughly a
    picosecond per kelvin.
    """

    slope_c_per_second: float
    offset_c: float
    kind: str = "two-point"

    def __post_init__(self) -> None:
        if self.slope_c_per_second == 0.0:
            raise CalibrationError("calibration slope must be non-zero")

    def temperature(
        self, period_s: Union[float, np.ndarray]
    ) -> Union[float, np.ndarray]:
        """Convert a measured period (seconds) to a temperature estimate.

        Accepts a scalar (returning a float, as the per-reading path
        always has) or an ndarray of periods of any shape, converted
        elementwise in one vectorized call — the form the batched
        calibration sweeps use on whole ``(sample x temperature)``
        measured-period matrices.
        """
        periods = np.asarray(period_s, dtype=float)
        if np.any(periods <= 0.0):
            raise CalibrationError("measured period must be positive")
        estimates = self.slope_c_per_second * periods + self.offset_c
        if np.ndim(period_s) == 0:
            return float(estimates)
        return estimates

    def period(
        self, temperature_c: Union[float, np.ndarray]
    ) -> Union[float, np.ndarray]:
        """Inverse map: the period expected at a temperature.

        Like :meth:`temperature`, broadcasts elementwise over ndarray
        inputs and returns a plain float for scalar inputs.
        """
        temps = np.asarray(temperature_c, dtype=float)
        periods = (temps - self.offset_c) / self.slope_c_per_second
        if np.ndim(temperature_c) == 0:
            return float(periods)
        return periods

    def with_offset_shift(self, delta_c: float) -> "LinearCalibration":
        """Return a copy with the offset shifted by ``delta_c`` kelvin."""
        return LinearCalibration(
            slope_c_per_second=self.slope_c_per_second,
            offset_c=self.offset_c + delta_c,
            kind=self.kind,
        )


@dataclass(frozen=True)
class PolynomialCalibration:
    """Polynomial period-to-temperature map (linearity-corrected readout).

    The paper's sensor relies on choosing a linear ring configuration,
    but a downstream user can instead spend a few multipliers on a
    polynomial correction; this class provides that option so the
    trade-off can be quantified.

    To keep the fit numerically well conditioned (periods are of the
    order of 1e-10 s), the polynomial acts on the normalised variable
    ``x = (period - period_offset_s) / period_scale_s``; coefficients
    follow ``numpy.polyval`` ordering (highest power first).
    """

    coefficients: Tuple[float, ...]
    period_offset_s: float = 0.0
    period_scale_s: float = 1.0
    kind: str = "polynomial"

    def __post_init__(self) -> None:
        if len(self.coefficients) < 2:
            raise CalibrationError("a polynomial calibration needs at least degree 1")
        if self.period_scale_s <= 0.0:
            raise CalibrationError("period_scale_s must be positive")

    def temperature(
        self, period_s: Union[float, np.ndarray]
    ) -> Union[float, np.ndarray]:
        """Convert a measured period (seconds) to a temperature estimate.

        Accepts a scalar (returning a float) or an ndarray of periods,
        evaluated elementwise through the normalised polynomial.
        """
        periods = np.asarray(period_s, dtype=float)
        if np.any(periods <= 0.0):
            raise CalibrationError("measured period must be positive")
        x = (periods - self.period_offset_s) / self.period_scale_s
        estimates = np.polyval(self.coefficients, x)
        if np.ndim(period_s) == 0:
            return float(estimates)
        return estimates

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1


def two_point_calibration(
    periods_s: Sequence[float],
    temperatures_c: Sequence[float],
) -> LinearCalibration:
    """Fit the line through two (period, temperature) calibration points."""
    if len(periods_s) != 2 or len(temperatures_c) != 2:
        raise CalibrationError("two-point calibration needs exactly two points")
    period_low, period_high = float(periods_s[0]), float(periods_s[1])
    temp_low, temp_high = float(temperatures_c[0]), float(temperatures_c[1])
    if period_low <= 0.0 or period_high <= 0.0:
        raise CalibrationError("calibration periods must be positive")
    if period_low == period_high:
        raise CalibrationError("calibration periods must differ")
    if temp_low == temp_high:
        raise CalibrationError("calibration temperatures must differ")
    slope = (temp_high - temp_low) / (period_high - period_low)
    offset = temp_low - slope * period_low
    return LinearCalibration(slope_c_per_second=slope, offset_c=offset, kind="two-point")


def one_point_calibration(
    period_s: float,
    temperature_c: float,
    design_slope_c_per_second: float,
) -> LinearCalibration:
    """Anchor the design-time slope at one measured point."""
    if design_slope_c_per_second == 0.0:
        raise CalibrationError("design slope must be non-zero")
    if period_s <= 0.0:
        raise CalibrationError("measured period must be positive")
    offset = temperature_c - design_slope_c_per_second * float(period_s)
    return LinearCalibration(
        slope_c_per_second=design_slope_c_per_second, offset_c=offset, kind="one-point"
    )


def design_calibration(
    periods_s: Sequence[float],
    temperatures_c: Sequence[float],
) -> LinearCalibration:
    """Least-squares line over a design-time (typical-process) transfer function.

    This is the "calibration" a part would ship with if no per-die
    trimming were performed at all.
    """
    periods_arr = np.asarray(periods_s, dtype=float)
    temps_arr = np.asarray(temperatures_c, dtype=float)
    if periods_arr.size < 2 or periods_arr.size != temps_arr.size:
        raise CalibrationError("design calibration needs matching period/temperature arrays")
    if np.any(periods_arr <= 0.0):
        raise CalibrationError("design periods must be positive")
    if np.all(periods_arr == periods_arr[0]):
        raise CalibrationError("periods do not vary over the design transfer function")
    slope, offset = np.polyfit(periods_arr, temps_arr, deg=1)
    return LinearCalibration(
        slope_c_per_second=float(slope), offset_c=float(offset), kind="design"
    )


def fit_polynomial_calibration(
    periods_s: Sequence[float],
    temperatures_c: Sequence[float],
    degree: int = 2,
) -> PolynomialCalibration:
    """Least-squares polynomial calibration of the requested degree."""
    periods_arr = np.asarray(periods_s, dtype=float)
    temps_arr = np.asarray(temperatures_c, dtype=float)
    if degree < 1:
        raise CalibrationError("degree must be at least 1")
    if periods_arr.size <= degree:
        raise CalibrationError("not enough points for the requested polynomial degree")
    if np.any(periods_arr <= 0.0):
        raise CalibrationError("calibration periods must be positive")
    offset = float(np.mean(periods_arr))
    scale = float(np.std(periods_arr))
    if scale <= 0.0:
        raise CalibrationError("calibration periods must not be all identical")
    normalised = (periods_arr - offset) / scale
    coefficients = np.polyfit(normalised, temps_arr, deg=degree)
    return PolynomialCalibration(
        coefficients=tuple(float(c) for c in coefficients),
        period_offset_s=offset,
        period_scale_s=scale,
    )
