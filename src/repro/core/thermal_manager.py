"""Closed-loop dynamic thermal management (DTM) built on the smart sensor.

The paper positions its sensor as "the core part of any thermal
management system".  This module supplies that system so the sensor can
be evaluated in its end application: a throttling controller reads the
multiplexed sensors periodically and switches the die between
performance states (full speed, throttled, emergency) to keep the
junction temperature below a limit, while the die temperature evolves
according to the compact thermal model.

The simulation is deliberately simple — one global performance state,
threshold-with-hysteresis policy — because that is exactly the kind of
policy the 0.35 um-era products cited by the paper (Pentium 4 thermal
throttling, PowerPC thermal assist unit) implemented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..oscillator.config import RingConfiguration
from ..tech.parameters import Technology, TechnologyError
from ..tech.stacked import TechnologyArray, stack_technologies
from ..thermal.floorplan import Floorplan
from ..thermal.grid import TemperatureMap, ThermalGrid, ThermalGridParameters, bilinear_sample
from ..thermal.operator import ThermalOperator
from ..thermal.power import PowerMap
from .mapping import ThermalMonitor
from .readout import ReadoutConfig

__all__ = [
    "PerformanceState",
    "ThrottlingPolicy",
    "PolicyBank",
    "DtmTracePoint",
    "DtmResult",
    "DtmBankResult",
    "DynamicThermalManager",
]


@dataclass(frozen=True)
class PerformanceState:
    """One operating point of the managed die."""

    name: str
    power_scale: float
    performance: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.power_scale <= 1.5:
            raise TechnologyError("power_scale must lie in [0, 1.5]")
        if not 0.0 <= self.performance <= 1.0:
            raise TechnologyError("performance must lie in [0, 1]")


@dataclass(frozen=True)
class ThrottlingPolicy:
    """Threshold-with-hysteresis throttling policy.

    Attributes
    ----------
    throttle_threshold_c:
        Sensor reading above which the die steps down one performance state.
    release_threshold_c:
        Reading below which the die steps back up (must be lower than the
        throttle threshold to provide hysteresis).
    emergency_threshold_c:
        Reading above which the die jumps straight to the lowest state.
    states:
        Performance states ordered from fastest to slowest.
    """

    throttle_threshold_c: float = 110.0
    release_threshold_c: float = 95.0
    emergency_threshold_c: float = 125.0
    states: Tuple[PerformanceState, ...] = (
        PerformanceState("full-speed", power_scale=1.0, performance=1.0),
        PerformanceState("throttled", power_scale=0.6, performance=0.6),
        PerformanceState("emergency", power_scale=0.25, performance=0.2),
    )

    def __post_init__(self) -> None:
        if self.release_threshold_c >= self.throttle_threshold_c:
            raise TechnologyError(
                "release threshold must be below the throttle threshold (hysteresis)"
            )
        if self.emergency_threshold_c <= self.throttle_threshold_c:
            raise TechnologyError(
                "emergency threshold must be above the throttle threshold"
            )
        if len(self.states) < 2:
            raise TechnologyError("at least two performance states are required")
        scales = [state.power_scale for state in self.states]
        if scales != sorted(scales, reverse=True):
            raise TechnologyError("states must be ordered from fastest to slowest")

    def next_state_index(self, current_index: int, hottest_reading_c: float) -> int:
        """Policy step: new state index given the hottest sensor reading."""
        last = len(self.states) - 1
        if hottest_reading_c >= self.emergency_threshold_c:
            return last
        if hottest_reading_c >= self.throttle_threshold_c:
            return min(current_index + 1, last)
        if hottest_reading_c <= self.release_threshold_c:
            return max(current_index - 1, 0)
        return current_index


@dataclass(frozen=True)
class DtmTracePoint:
    """One control-interval sample of the closed-loop simulation."""

    time_s: float
    state_name: str
    power_w: float
    true_peak_c: float
    hottest_reading_c: float
    performance: float


@dataclass(frozen=True)
class DtmResult:
    """Outcome of a closed-loop DTM simulation."""

    trace: Tuple[DtmTracePoint, ...]
    limit_c: float
    final_map: TemperatureMap

    def peak_temperature_c(self) -> float:
        return max(point.true_peak_c for point in self.trace)

    def time_above_limit_s(self) -> float:
        """Total time the true peak temperature exceeded the limit."""
        if len(self.trace) < 2:
            return 0.0
        total = 0.0
        for previous, current in zip(self.trace, self.trace[1:]):
            if current.true_peak_c > self.limit_c:
                total += current.time_s - previous.time_s
        return total

    def average_performance(self) -> float:
        """Mean delivered performance (1.0 = never throttled)."""
        return float(np.mean([point.performance for point in self.trace]))

    def throttle_events(self) -> int:
        """Number of transitions into a slower performance state."""
        events = 0
        names = [point.state_name for point in self.trace]
        ranks = {state: rank for rank, state in enumerate(dict.fromkeys(names))}
        previous_rank: Optional[int] = None
        for point in self.trace:
            rank = ranks[point.state_name]
            if previous_rank is not None and rank > previous_rank:
                events += 1
            previous_rank = rank
        return events

    def state_occupancy(self) -> Dict[str, float]:
        """Fraction of control intervals spent in each performance state."""
        names = [point.state_name for point in self.trace]
        return {name: names.count(name) / len(names) for name in dict.fromkeys(names)}


class PolicyBank:
    """A stack of throttling policies, struct-of-arrays style.

    The DTM policy *comparison* — the paper's actual story — evaluates
    many thresholds/hysteresis/performance-state sets against the same
    die.  Run one at a time through :meth:`DynamicThermalManager.run`,
    every policy pays its own transient integration and per-step sensor
    scan.  A :class:`PolicyBank` stores the policies as threshold
    vectors plus padded ``(policy, state)`` performance-state tables, so
    :meth:`DynamicThermalManager.run_bank` can carry every policy's FSM
    state as one index vector and advance all of them through a single
    shared :class:`~repro.thermal.operator.ThermalStepper` multi-RHS
    solve per timestep.

    Accepts a label-to-policy mapping (preferred — labels name the
    sweep axis), a plain policy sequence (labelled ``policy-0``, ...),
    or another bank.
    """

    def __init__(
        self,
        policies: Union[
            Mapping[str, ThrottlingPolicy], Sequence[ThrottlingPolicy]
        ],
    ) -> None:
        if isinstance(policies, Mapping):
            labels = [str(label) for label in policies]
            stack = list(policies.values())
        else:
            stack = list(policies)
            labels = [f"policy-{index}" for index in range(len(stack))]
        if not stack:
            raise TechnologyError("a policy bank needs at least one policy")
        for policy in stack:
            if not isinstance(policy, ThrottlingPolicy):
                raise TechnologyError(
                    f"policy banks stack ThrottlingPolicy objects, got "
                    f"{type(policy).__name__}"
                )
        if len(set(labels)) != len(labels):
            raise TechnologyError("policy labels must be unique within a bank")
        self._labels = tuple(labels)
        self._policies = tuple(stack)
        self.throttle_c = np.asarray([p.throttle_threshold_c for p in stack])
        self.release_c = np.asarray([p.release_threshold_c for p in stack])
        self.emergency_c = np.asarray([p.emergency_threshold_c for p in stack])
        self.state_counts = np.asarray([len(p.states) for p in stack], dtype=int)
        width = int(self.state_counts.max())
        # Rows are padded with the slowest state's values; the FSM index
        # is clamped to the policy's own last state, so padding is never
        # selected.
        self.power_scales = np.asarray(
            [
                [p.states[min(s, len(p.states) - 1)].power_scale for s in range(width)]
                for p in stack
            ]
        )
        self.performances = np.asarray(
            [
                [p.states[min(s, len(p.states) - 1)].performance for s in range(width)]
                for p in stack
            ]
        )

    @classmethod
    def of(
        cls,
        policies: Union[
            "PolicyBank", Mapping[str, ThrottlingPolicy], Sequence[ThrottlingPolicy]
        ],
    ) -> "PolicyBank":
        """Coerce a mapping/sequence/bank into a :class:`PolicyBank`."""
        if isinstance(policies, cls):
            return policies
        return cls(policies)

    @property
    def policy_count(self) -> int:
        return len(self._policies)

    def __len__(self) -> int:
        return self.policy_count

    def labels(self) -> Tuple[str, ...]:
        return self._labels

    def policies(self) -> Tuple[ThrottlingPolicy, ...]:
        return self._policies

    def policy(self, label: str) -> ThrottlingPolicy:
        """The scalar policy behind a label (the oracle for that row)."""
        try:
            return self._policies[self._labels.index(label)]
        except ValueError:
            raise TechnologyError(
                f"no policy labelled {label!r}; labels are {self._labels}"
            ) from None

    def _per_policy(self, values: np.ndarray, like: np.ndarray) -> np.ndarray:
        """Reshape a ``(policy,)`` vector to broadcast against ``like``."""
        return values.reshape((self.policy_count,) + (1,) * (like.ndim - 1))

    def next_state_indices(
        self, indices: np.ndarray, hottest_readings_c: np.ndarray
    ) -> np.ndarray:
        """Vectorized policy step over the whole bank.

        ``indices`` and ``hottest_readings_c`` share a leading
        ``policy`` axis (plus any trailing sample axes); the comparisons
        are elementwise :meth:`ThrottlingPolicy.next_state_index`, so a
        banked run takes exactly the decisions the scalar FSM takes.
        """
        indices = np.asarray(indices, dtype=int)
        readings = np.asarray(hottest_readings_c, dtype=float)
        last = self._per_policy(self.state_counts - 1, readings)
        stepped_down = np.minimum(indices + 1, last)
        stepped_up = np.maximum(indices - 1, 0)
        return np.where(
            readings >= self._per_policy(self.emergency_c, readings),
            last,
            np.where(
                readings >= self._per_policy(self.throttle_c, readings),
                stepped_down,
                np.where(
                    readings <= self._per_policy(self.release_c, readings),
                    stepped_up,
                    indices,
                ),
            ),
        )

    def _gather(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        flat = np.take_along_axis(
            table, indices.reshape(self.policy_count, -1), axis=1
        )
        return flat.reshape(indices.shape)

    def power_scales_at(self, indices: np.ndarray) -> np.ndarray:
        """Per-policy power scale of the current FSM state indices."""
        return self._gather(self.power_scales, np.asarray(indices, dtype=int))

    def performances_at(self, indices: np.ndarray) -> np.ndarray:
        """Per-policy delivered performance of the current state indices."""
        return self._gather(self.performances, np.asarray(indices, dtype=int))

    def state_name(self, policy_index: int, state_index: int) -> str:
        return self._policies[policy_index].states[int(state_index)].name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PolicyBank({', '.join(self._labels)})"


@dataclass(frozen=True)
class DtmBankResult:
    """Outcome of a banked multi-policy DTM simulation.

    Every value array carries a leading ``policy`` axis, an optional
    ``sample`` axis (when the run scanned a Monte-Carlo technology
    population) and a trailing ``step`` axis; the metric accessors
    reduce over steps, returning one value per policy (per sample).
    :meth:`to_result` unstacks one policy's trace back into the scalar
    :class:`DtmResult`, which is how the equivalence tests compare the
    banked run against the retained scalar oracle point for point.
    """

    bank: PolicyBank
    times_s: np.ndarray
    state_indices: np.ndarray
    power_w: np.ndarray
    true_peak_c: np.ndarray
    hottest_reading_c: np.ndarray
    performance: np.ndarray
    limit_c: float
    final_values_c: np.ndarray
    die_width_mm: float
    die_height_mm: float

    @property
    def labels(self) -> Tuple[str, ...]:
        return self.bank.labels()

    @property
    def policy_count(self) -> int:
        return self.bank.policy_count

    @property
    def sample_count(self) -> Optional[int]:
        """Population size, or ``None`` for a single-technology run."""
        if self.state_indices.ndim == 3:
            return int(self.state_indices.shape[1])
        return None

    @property
    def step_count(self) -> int:
        return int(self.times_s.size)

    def _policy_axis_index(self, label: str) -> int:
        try:
            return self.labels.index(label)
        except ValueError:
            raise TechnologyError(
                f"no policy labelled {label!r}; labels are {self.labels}"
            ) from None

    # ------------------------------------------------------------------ #
    # vectorized metrics (one value per policy [per sample])
    # ------------------------------------------------------------------ #

    def peak_temperature_c(self) -> np.ndarray:
        return self.true_peak_c.max(axis=-1)

    def time_above_limit_s(self) -> np.ndarray:
        """Total time each policy's true peak exceeded the limit.

        Matches :meth:`DtmResult.time_above_limit_s`: intervals are
        counted from the second trace point on (the first has no
        predecessor to span from).
        """
        interval = float(self.times_s[1] - self.times_s[0]) if self.step_count > 1 else 0.0
        above = self.true_peak_c[..., 1:] > self.limit_c
        return above.sum(axis=-1) * interval

    def average_performance(self) -> np.ndarray:
        return self.performance.mean(axis=-1)

    def throttle_events(self) -> np.ndarray:
        """Downward state transitions per policy (scalar-rank semantics).

        Counts with :meth:`DtmResult.throttle_events`'s first-seen-rank
        rule (which differs from a plain index comparison when an
        emergency jump reorders the first appearance of states) applied
        directly to the integer state traces, so the banked metric
        cannot drift from the oracle without materialising a throwaway
        trace per (policy, sample) row.
        """
        flat_indices = self.state_indices.reshape(self.policy_count, -1, self.step_count)
        counts = np.zeros(flat_indices.shape[:2], dtype=int)
        for p in range(flat_indices.shape[0]):
            names = [
                self.bank.state_name(p, state)
                for state in range(int(self.bank.state_counts[p]))
            ]
            for s in range(flat_indices.shape[1]):
                ranks: Dict[str, int] = {}
                events = 0
                previous: Optional[int] = None
                for index in flat_indices[p, s]:
                    rank = ranks.setdefault(names[index], len(ranks))
                    if previous is not None and rank > previous:
                        events += 1
                    previous = rank
                counts[p, s] = events
        return counts.reshape(self.state_indices.shape[:-1])

    def state_occupancy(self) -> Dict[str, Dict[str, float]]:
        """Per-policy state-occupancy fractions (single-technology runs)."""
        if self.sample_count is not None:
            raise TechnologyError(
                "state occupancy dictionaries are only defined for single-"
                "technology runs; index the (policy, sample, step) arrays instead"
            )
        return {
            label: self.to_result(label).state_occupancy() for label in self.labels
        }

    # ------------------------------------------------------------------ #
    # unstacking
    # ------------------------------------------------------------------ #

    def to_result(self, label: str) -> DtmResult:
        """Unstack one policy's full trace into a scalar :class:`DtmResult`.

        Only defined for single-technology runs (the scalar trace has no
        sample axis).  The result is point-for-point comparable with a
        :meth:`DynamicThermalManager.run` of the same policy.
        """
        if self.sample_count is not None:
            raise TechnologyError(
                "to_result() unstacks single-technology runs; population "
                "runs carry (policy, sample, step) arrays instead"
            )
        p = self._policy_axis_index(label)
        trace = tuple(
            DtmTracePoint(
                time_s=float(self.times_s[k]),
                state_name=self.bank.state_name(p, self.state_indices[p, k]),
                power_w=float(self.power_w[p, k]),
                true_peak_c=float(self.true_peak_c[p, k]),
                hottest_reading_c=float(self.hottest_reading_c[p, k]),
                performance=float(self.performance[p, k]),
            )
            for k in range(self.step_count)
        )
        final = TemperatureMap(
            self.die_width_mm, self.die_height_mm, self.final_values_c[p]
        )
        return DtmResult(trace=trace, limit_c=self.limit_c, final_map=final)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extent = f"{self.policy_count} policies x {self.step_count} steps"
        if self.sample_count is not None:
            extent = (
                f"{self.policy_count} policies x {self.sample_count} samples "
                f"x {self.step_count} steps"
            )
        return f"DtmBankResult({extent})"


class DynamicThermalManager:
    """Closed-loop simulation of sensor-driven thermal throttling.

    Parameters
    ----------
    technology:
        CMOS technology of the sensors.
    floorplan:
        Die floorplan; must contain sensor sites (the monitor reads them).
    configuration:
        Ring configuration of every sensor.
    policy:
        Throttling policy.
    readout:
        Sensor readout configuration.
    grid_resolution:
        Thermal-model grid resolution.
    ambient_c:
        Package/board ambient temperature.
    """

    def __init__(
        self,
        technology: Technology,
        floorplan: Floorplan,
        configuration: RingConfiguration,
        policy: ThrottlingPolicy = ThrottlingPolicy(),
        readout: ReadoutConfig = ReadoutConfig(),
        grid_resolution: int = 24,
        ambient_c: float = 45.0,
        thermal_parameters: ThermalGridParameters = ThermalGridParameters(),
        solve_method: str = "auto",
    ) -> None:
        self.technology = technology
        self.floorplan = floorplan
        self.policy = policy
        self.ambient_c = float(ambient_c)
        #: How the backward-Euler systems are solved (one of
        #: ``repro.thermal.SOLVE_METHODS``) — ``auto`` picks a direct
        #: factorization on small grids and multigrid-preconditioned
        #: block CG on full-die resolutions, so a banked run stays one
        #: (possibly iterative) solve per timestep at any grid size.
        self.solve_method = solve_method
        self.monitor = ThermalMonitor(
            technology,
            floorplan,
            configuration,
            readout=readout,
            grid_resolution=grid_resolution,
            ambient_c=ambient_c,
            thermal_parameters=thermal_parameters,
        )
        self.monitor.calibrate(-50.0, 150.0)
        self._base_power = PowerMap.from_floorplan(
            floorplan, nx=grid_resolution, ny=grid_resolution
        )
        self._grid = ThermalGrid.for_power_map(self._base_power, thermal_parameters)
        self._site_xs, self._site_ys = self.monitor.bank.positions()

    @property
    def base_power_map(self) -> PowerMap:
        """Workload power map at full speed."""
        return self._base_power

    def _sensor_readings(self, die_map: TemperatureMap) -> Dict[str, float]:
        """Read every sensor at its local junction temperature.

        One banked scan (vectorized site gather + one broadcast period
        evaluation + one batch counter conversion) replaces the
        per-sensor multiplexer loop that used to run every control
        interval.
        """
        if self.monitor.bank.calibration is None:
            raise TechnologyError("DTM requires calibrated sensors")
        truths = die_map.sample_points(self._site_xs, self._site_ys)
        scan = self.monitor.bank.scan(truths)
        return {
            name: float(estimate)
            for name, estimate in zip(scan.names, scan.estimates_c)
        }

    def run(
        self,
        duration_s: float = 2.0,
        control_interval_s: float = 0.02,
        limit_c: float = 115.0,
        workload_scale: float = 1.0,
        policy: Optional[ThrottlingPolicy] = None,
    ) -> DtmResult:
        """Run the closed-loop simulation.

        Parameters
        ----------
        duration_s:
            Simulated wall-clock time.
        control_interval_s:
            Period of the sensor scan + policy decision (also the thermal
            integration step).
        limit_c:
            Junction-temperature limit used for the reporting metrics
            (time-above-limit); the policy thresholds live in the policy.
        workload_scale:
            Scaling of the workload power (for what-if studies).
        policy:
            Per-run policy override (the manager's own policy when
            omitted).  This is how a study runs the *same* die and
            sensors under different policies — e.g. an unmanaged
            reference whose thresholds are never reached — without
            rebuilding the manager or the thermal model.
        """
        if duration_s <= 0.0 or control_interval_s <= 0.0:
            raise TechnologyError("duration and control interval must be positive")
        if control_interval_s >= duration_s:
            raise TechnologyError("control interval must be shorter than the duration")
        if workload_scale < 0.0:
            raise TechnologyError("workload_scale must be non-negative")

        active_policy = policy if policy is not None else self.policy
        steps = int(np.ceil(duration_s / control_interval_s))
        grid = self._grid
        # The backward-Euler factorization comes from the process-wide
        # operator cache, so every run over the same grid and control
        # interval — including the managed/unmanaged pair of a study —
        # shares a single factorization.
        stepper = ThermalOperator.for_grid(grid, self.solve_method).stepper(
            control_interval_s
        )

        state_index = 0
        rise = np.zeros(grid.nx * grid.ny)
        trace: List[DtmTracePoint] = []

        for step in range(1, steps + 1):
            time = step * control_interval_s
            state = active_policy.states[state_index]
            power = self._base_power.scaled(workload_scale * state.power_scale)
            rise = stepper.step(rise, power.values_w.reshape(-1))
            die_map = TemperatureMap(
                grid.width_mm,
                grid.height_mm,
                rise.reshape((grid.ny, grid.nx)) + self.ambient_c,
            )

            readings = self._sensor_readings(die_map)
            hottest = max(readings.values())
            trace.append(
                DtmTracePoint(
                    time_s=time,
                    state_name=state.name,
                    power_w=power.total_power_w(),
                    true_peak_c=die_map.max_c(),
                    hottest_reading_c=hottest,
                    performance=state.performance,
                )
            )
            state_index = active_policy.next_state_index(state_index, hottest)

        return DtmResult(trace=tuple(trace), limit_c=limit_c, final_map=die_map)

    def run_bank(
        self,
        policies: Union[
            PolicyBank, Mapping[str, ThrottlingPolicy], Sequence[ThrottlingPolicy]
        ],
        duration_s: float = 2.0,
        control_interval_s: float = 0.02,
        limit_c: float = 115.0,
        workload_scale: float = 1.0,
        technologies=None,
    ) -> DtmBankResult:
        """Run every policy of a bank through one shared closed loop.

        The banked counterpart of :meth:`run` (which is retained as the
        per-policy oracle): all policies advance in lockstep, so each
        timestep costs **one** multi-RHS backward-Euler solve for the
        whole ``(cell, policy)`` temperature-rise stack, one bilinear
        gather of every policy's sensor sites from its own field, one
        broadcast ring-period evaluation and one vectorized FSM step —
        instead of one full transient integration per policy.  The
        arithmetic per policy is exactly the scalar loop's, so throttle
        decisions bit-match and temperatures agree to solver rounding.

        Parameters
        ----------
        policies:
            A :class:`PolicyBank`, a label-to-policy mapping or a policy
            sequence.
        duration_s / control_interval_s / limit_c / workload_scale:
            As in :meth:`run` (shared by every policy — the comparison
            holds the workload fixed and varies only the policy).
        technologies:
            Optional Monte-Carlo technology population (a stacked
            :class:`~repro.tech.stacked.TechnologyArray` or a stackable
            technology sequence).  The sensors of every sample read the
            same die through their own process corner and per-sample
            two-point calibration, so the run becomes the full policy x
            sample cross product — result arrays gain a ``sample`` axis
            and each (policy, sample) pair carries its own FSM/thermal
            trajectory.
        """
        if duration_s <= 0.0 or control_interval_s <= 0.0:
            raise TechnologyError("duration and control interval must be positive")
        if control_interval_s >= duration_s:
            raise TechnologyError("control interval must be shorter than the duration")
        if workload_scale < 0.0:
            raise TechnologyError("workload_scale must be non-negative")
        bank = PolicyBank.of(policies)
        sensors = self.monitor.bank
        if sensors.calibration is None:
            raise TechnologyError("DTM requires calibrated sensors")
        if technologies is None:
            calibration = sensors.calibration
            population = None
            sample_count = None
        else:
            if not isinstance(technologies, TechnologyArray):
                technologies = stack_technologies(list(technologies))
            population = technologies
            sample_count = len(population)
            # Every sample's sensors get their own two-point calibration
            # at the manager's insertion temperatures.
            calibration = sensors.two_point_calibration(
                sensors.calibration.low_temperature_c,
                sensors.calibration.high_temperature_c,
                technologies=population,
            )

        steps = int(np.ceil(duration_s / control_interval_s))
        grid = self._grid
        stepper = ThermalOperator.for_grid(grid, self.solve_method).stepper(
            control_interval_s
        )
        policy_count = bank.policy_count
        column_shape = (
            (policy_count,) if sample_count is None else (policy_count, sample_count)
        )
        columns = int(np.prod(column_shape))

        base_flat = self._base_power.values_w.reshape(-1)
        rise = np.zeros((grid.nx * grid.ny, columns))
        indices = np.zeros(column_shape, dtype=int)
        trace_shape = column_shape + (steps,)
        state_trace = np.zeros(trace_shape, dtype=int)
        power_trace = np.zeros(trace_shape)
        peak_trace = np.zeros(trace_shape)
        hottest_trace = np.zeros(trace_shape)
        performance_trace = np.zeros(trace_shape)
        times = (np.arange(steps) + 1) * control_interval_s
        ring = sensors.ring if population is None else sensors.ring.rebind(population)

        for step in range(steps):
            scales = bank.power_scales_at(indices)
            # Same multiplication order as the scalar loop's
            # ``base.scaled(workload_scale * state.power_scale)``.
            factors = workload_scale * scales
            power = base_flat[:, np.newaxis] * factors.reshape(1, columns)
            rise = stepper.step(rise, power)
            fields = rise.T.reshape(column_shape + (grid.ny, grid.nx)) + self.ambient_c

            truths = bilinear_sample(
                fields, grid.width_mm, grid.height_mm, self._site_xs, self._site_ys
            )
            if population is None:
                periods = np.asarray(ring.period_series(truths), dtype=float)
            else:
                # (policy, site, sample, 1) temperatures against the
                # stacked population's (sample, 1) parameter columns;
                # the sample axis stays last so the per-sample
                # calibration rows broadcast without a transpose.
                site_major = np.moveaxis(truths, -1, 1)
                periods = np.asarray(
                    ring.period_series(site_major[..., np.newaxis]), dtype=float
                ).reshape(site_major.shape)
            codes, _saturated = sensors.counter.convert_batch(periods)
            measured = sensors.counter.codes_to_periods(codes)
            estimates = calibration.estimate(measured)
            if population is None:
                hottest = estimates.max(axis=-1)
            else:
                hottest = estimates.max(axis=1)

            state_trace[..., step] = indices
            power_trace[..., step] = power.sum(axis=0).reshape(column_shape)
            peak_trace[..., step] = fields.max(axis=(-2, -1))
            hottest_trace[..., step] = hottest
            performance_trace[..., step] = bank.performances_at(indices)
            indices = bank.next_state_indices(indices, hottest)

        return DtmBankResult(
            bank=bank,
            times_s=times,
            state_indices=state_trace,
            power_w=power_trace,
            true_peak_c=peak_trace,
            hottest_reading_c=hottest_trace,
            performance=performance_trace,
            limit_c=limit_c,
            final_values_c=fields,
            die_width_mm=grid.width_mm,
            die_height_mm=grid.height_mm,
        )
