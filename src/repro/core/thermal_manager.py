"""Closed-loop dynamic thermal management (DTM) built on the smart sensor.

The paper positions its sensor as "the core part of any thermal
management system".  This module supplies that system so the sensor can
be evaluated in its end application: a throttling controller reads the
multiplexed sensors periodically and switches the die between
performance states (full speed, throttled, emergency) to keep the
junction temperature below a limit, while the die temperature evolves
according to the compact thermal model.

The simulation is deliberately simple — one global performance state,
threshold-with-hysteresis policy — because that is exactly the kind of
policy the 0.35 um-era products cited by the paper (Pentium 4 thermal
throttling, PowerPC thermal assist unit) implemented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..oscillator.config import RingConfiguration
from ..tech.parameters import Technology, TechnologyError
from ..thermal.floorplan import Floorplan
from ..thermal.grid import TemperatureMap, ThermalGrid, ThermalGridParameters
from ..thermal.operator import ThermalOperator
from ..thermal.power import PowerMap
from .mapping import ThermalMonitor
from .readout import ReadoutConfig

__all__ = [
    "PerformanceState",
    "ThrottlingPolicy",
    "DtmTracePoint",
    "DtmResult",
    "DynamicThermalManager",
]


@dataclass(frozen=True)
class PerformanceState:
    """One operating point of the managed die."""

    name: str
    power_scale: float
    performance: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.power_scale <= 1.5:
            raise TechnologyError("power_scale must lie in [0, 1.5]")
        if not 0.0 <= self.performance <= 1.0:
            raise TechnologyError("performance must lie in [0, 1]")


@dataclass(frozen=True)
class ThrottlingPolicy:
    """Threshold-with-hysteresis throttling policy.

    Attributes
    ----------
    throttle_threshold_c:
        Sensor reading above which the die steps down one performance state.
    release_threshold_c:
        Reading below which the die steps back up (must be lower than the
        throttle threshold to provide hysteresis).
    emergency_threshold_c:
        Reading above which the die jumps straight to the lowest state.
    states:
        Performance states ordered from fastest to slowest.
    """

    throttle_threshold_c: float = 110.0
    release_threshold_c: float = 95.0
    emergency_threshold_c: float = 125.0
    states: Tuple[PerformanceState, ...] = (
        PerformanceState("full-speed", power_scale=1.0, performance=1.0),
        PerformanceState("throttled", power_scale=0.6, performance=0.6),
        PerformanceState("emergency", power_scale=0.25, performance=0.2),
    )

    def __post_init__(self) -> None:
        if self.release_threshold_c >= self.throttle_threshold_c:
            raise TechnologyError(
                "release threshold must be below the throttle threshold (hysteresis)"
            )
        if self.emergency_threshold_c <= self.throttle_threshold_c:
            raise TechnologyError(
                "emergency threshold must be above the throttle threshold"
            )
        if len(self.states) < 2:
            raise TechnologyError("at least two performance states are required")
        scales = [state.power_scale for state in self.states]
        if scales != sorted(scales, reverse=True):
            raise TechnologyError("states must be ordered from fastest to slowest")

    def next_state_index(self, current_index: int, hottest_reading_c: float) -> int:
        """Policy step: new state index given the hottest sensor reading."""
        last = len(self.states) - 1
        if hottest_reading_c >= self.emergency_threshold_c:
            return last
        if hottest_reading_c >= self.throttle_threshold_c:
            return min(current_index + 1, last)
        if hottest_reading_c <= self.release_threshold_c:
            return max(current_index - 1, 0)
        return current_index


@dataclass(frozen=True)
class DtmTracePoint:
    """One control-interval sample of the closed-loop simulation."""

    time_s: float
    state_name: str
    power_w: float
    true_peak_c: float
    hottest_reading_c: float
    performance: float


@dataclass(frozen=True)
class DtmResult:
    """Outcome of a closed-loop DTM simulation."""

    trace: Tuple[DtmTracePoint, ...]
    limit_c: float
    final_map: TemperatureMap

    def peak_temperature_c(self) -> float:
        return max(point.true_peak_c for point in self.trace)

    def time_above_limit_s(self) -> float:
        """Total time the true peak temperature exceeded the limit."""
        if len(self.trace) < 2:
            return 0.0
        total = 0.0
        for previous, current in zip(self.trace, self.trace[1:]):
            if current.true_peak_c > self.limit_c:
                total += current.time_s - previous.time_s
        return total

    def average_performance(self) -> float:
        """Mean delivered performance (1.0 = never throttled)."""
        return float(np.mean([point.performance for point in self.trace]))

    def throttle_events(self) -> int:
        """Number of transitions into a slower performance state."""
        events = 0
        names = [point.state_name for point in self.trace]
        ranks = {state: rank for rank, state in enumerate(dict.fromkeys(names))}
        previous_rank: Optional[int] = None
        for point in self.trace:
            rank = ranks[point.state_name]
            if previous_rank is not None and rank > previous_rank:
                events += 1
            previous_rank = rank
        return events

    def state_occupancy(self) -> Dict[str, float]:
        """Fraction of control intervals spent in each performance state."""
        names = [point.state_name for point in self.trace]
        return {name: names.count(name) / len(names) for name in dict.fromkeys(names)}


class DynamicThermalManager:
    """Closed-loop simulation of sensor-driven thermal throttling.

    Parameters
    ----------
    technology:
        CMOS technology of the sensors.
    floorplan:
        Die floorplan; must contain sensor sites (the monitor reads them).
    configuration:
        Ring configuration of every sensor.
    policy:
        Throttling policy.
    readout:
        Sensor readout configuration.
    grid_resolution:
        Thermal-model grid resolution.
    ambient_c:
        Package/board ambient temperature.
    """

    def __init__(
        self,
        technology: Technology,
        floorplan: Floorplan,
        configuration: RingConfiguration,
        policy: ThrottlingPolicy = ThrottlingPolicy(),
        readout: ReadoutConfig = ReadoutConfig(),
        grid_resolution: int = 24,
        ambient_c: float = 45.0,
        thermal_parameters: ThermalGridParameters = ThermalGridParameters(),
    ) -> None:
        self.technology = technology
        self.floorplan = floorplan
        self.policy = policy
        self.ambient_c = float(ambient_c)
        self.monitor = ThermalMonitor(
            technology,
            floorplan,
            configuration,
            readout=readout,
            grid_resolution=grid_resolution,
            ambient_c=ambient_c,
            thermal_parameters=thermal_parameters,
        )
        self.monitor.calibrate(-50.0, 150.0)
        self._base_power = PowerMap.from_floorplan(
            floorplan, nx=grid_resolution, ny=grid_resolution
        )
        self._grid = ThermalGrid.for_power_map(self._base_power, thermal_parameters)
        self._site_xs, self._site_ys = self.monitor.bank.positions()

    @property
    def base_power_map(self) -> PowerMap:
        """Workload power map at full speed."""
        return self._base_power

    def _sensor_readings(self, die_map: TemperatureMap) -> Dict[str, float]:
        """Read every sensor at its local junction temperature.

        One banked scan (vectorized site gather + one broadcast period
        evaluation + one batch counter conversion) replaces the
        per-sensor multiplexer loop that used to run every control
        interval.
        """
        if self.monitor.bank.calibration is None:
            raise TechnologyError("DTM requires calibrated sensors")
        truths = die_map.sample_points(self._site_xs, self._site_ys)
        scan = self.monitor.bank.scan(truths)
        return {
            name: float(estimate)
            for name, estimate in zip(scan.names, scan.estimates_c)
        }

    def run(
        self,
        duration_s: float = 2.0,
        control_interval_s: float = 0.02,
        limit_c: float = 115.0,
        workload_scale: float = 1.0,
        policy: Optional[ThrottlingPolicy] = None,
    ) -> DtmResult:
        """Run the closed-loop simulation.

        Parameters
        ----------
        duration_s:
            Simulated wall-clock time.
        control_interval_s:
            Period of the sensor scan + policy decision (also the thermal
            integration step).
        limit_c:
            Junction-temperature limit used for the reporting metrics
            (time-above-limit); the policy thresholds live in the policy.
        workload_scale:
            Scaling of the workload power (for what-if studies).
        policy:
            Per-run policy override (the manager's own policy when
            omitted).  This is how a study runs the *same* die and
            sensors under different policies — e.g. an unmanaged
            reference whose thresholds are never reached — without
            rebuilding the manager or the thermal model.
        """
        if duration_s <= 0.0 or control_interval_s <= 0.0:
            raise TechnologyError("duration and control interval must be positive")
        if control_interval_s >= duration_s:
            raise TechnologyError("control interval must be shorter than the duration")
        if workload_scale < 0.0:
            raise TechnologyError("workload_scale must be non-negative")

        active_policy = policy if policy is not None else self.policy
        steps = int(np.ceil(duration_s / control_interval_s))
        grid = self._grid
        # The backward-Euler factorization comes from the process-wide
        # operator cache, so every run over the same grid and control
        # interval — including the managed/unmanaged pair of a study —
        # shares a single factorization.
        stepper = ThermalOperator.for_grid(grid).stepper(control_interval_s)

        state_index = 0
        rise = np.zeros(grid.nx * grid.ny)
        trace: List[DtmTracePoint] = []

        for step in range(1, steps + 1):
            time = step * control_interval_s
            state = active_policy.states[state_index]
            power = self._base_power.scaled(workload_scale * state.power_scale)
            rise = stepper.step(rise, power.values_w.reshape(-1))
            die_map = TemperatureMap(
                grid.width_mm,
                grid.height_mm,
                rise.reshape((grid.ny, grid.nx)) + self.ambient_c,
            )

            readings = self._sensor_readings(die_map)
            hottest = max(readings.values())
            trace.append(
                DtmTracePoint(
                    time_s=time,
                    state_name=state.name,
                    power_w=power.total_power_w(),
                    true_peak_c=die_map.max_c(),
                    hottest_reading_c=hottest,
                    performance=state.performance,
                )
            )
            state_index = active_policy.next_state_index(state_index, hottest)

        return DtmResult(trace=tuple(trace), limit_c=limit_c, final_map=die_map)
