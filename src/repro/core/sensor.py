"""The smart temperature sensor: oscillator + readout + control + calibration.

This is the paper's primary contribution assembled into one object.  A
:class:`SmartTemperatureSensor` owns

* a :class:`~repro.oscillator.ring.RingOscillator` built from standard
  library cells (the sensing element),
* a counter-based readout (:mod:`repro.core.readout`) converting the
  oscillation period into a digital code,
* a measurement controller (:mod:`repro.core.controller`) providing the
  enable/disable and busy-flag behaviour that limits self-heating, and
* an optional calibration (:mod:`repro.core.calibration`) mapping codes
  back to temperature.

The sensor is a behavioural model: given the junction temperature at its
location it produces the digital code (with quantisation and saturation)
the hardware would produce, plus the estimated temperature if it has
been calibrated.  The thermal-mapping layer
(:mod:`repro.core.mapping`) supplies the junction temperatures from the
die thermal model, closing the loop the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..cells.library import CellLibrary, default_library
from ..oscillator.config import RingConfiguration
from ..oscillator.period import TemperatureResponse, analytical_response, default_temperature_grid
from ..oscillator.ring import RingOscillator
from ..tech.parameters import Technology, TechnologyError
from .calibration import (
    LinearCalibration,
    PolynomialCalibration,
    design_calibration,
    one_point_calibration,
    two_point_calibration,
)
from .controller import ControllerConfig, MeasurementController
from .readout import CountReading, PeriodCounter, ReadoutConfig

__all__ = ["SensorReading", "SensorTransferFunction", "SmartTemperatureSensor"]


@dataclass(frozen=True)
class SensorReading:
    """One complete measurement of the smart sensor."""

    code: int
    saturated: bool
    conversion_time_s: float
    oscillator_period_s: float
    measured_period_s: float
    temperature_estimate_c: Optional[float]
    true_temperature_c: float

    @property
    def error_c(self) -> Optional[float]:
        """Measurement error (estimate minus truth), if calibrated."""
        if self.temperature_estimate_c is None:
            return None
        return self.temperature_estimate_c - self.true_temperature_c

    @property
    def quantisation_error_s(self) -> float:
        """Difference between the measured and the true oscillation period."""
        return self.measured_period_s - self.oscillator_period_s


@dataclass(frozen=True)
class SensorTransferFunction:
    """Digital code (and period estimate) versus temperature.

    This is the sensor's datasheet curve: the raw counter code, plus the
    period estimate the digital block reconstructs from it (the quantity
    the calibration operates on).
    """

    temperatures_c: np.ndarray
    codes: np.ndarray
    measured_periods_s: np.ndarray

    def __post_init__(self) -> None:
        temps = np.asarray(self.temperatures_c, dtype=float)
        codes = np.asarray(self.codes, dtype=float)
        periods = np.asarray(self.measured_periods_s, dtype=float)
        if temps.shape != codes.shape or temps.ndim != 1 or periods.shape != temps.shape:
            raise TechnologyError("transfer function arrays must be matching 1-D arrays")
        object.__setattr__(self, "temperatures_c", temps)
        object.__setattr__(self, "codes", codes)
        object.__setattr__(self, "measured_periods_s", periods)

    def code_at(self, temperature_c: float) -> float:
        return float(np.interp(temperature_c, self.temperatures_c, self.codes))

    def codes_per_kelvin(self) -> float:
        """Average |d(code)/dT| over the characterised range."""
        span_codes = abs(float(self.codes[-1] - self.codes[0]))
        span_temps = float(self.temperatures_c[-1] - self.temperatures_c[0])
        return span_codes / span_temps

    def is_monotonic(self) -> bool:
        """Whether the code changes monotonically with temperature."""
        diffs = np.diff(self.codes)
        return bool(np.all(diffs <= 0) or np.all(diffs >= 0))


class SmartTemperatureSensor:
    """Behavioural model of the complete smart temperature sensor.

    Parameters
    ----------
    ring:
        The ring-oscillator sensing element.
    readout:
        Counter readout configuration.
    controller_config:
        Measurement-controller configuration (settle time, auto-disable).
    name:
        Instance name, used by the multiplexer and the thermal monitor.
    """

    def __init__(
        self,
        ring: RingOscillator,
        readout: ReadoutConfig = ReadoutConfig(),
        controller_config: ControllerConfig = ControllerConfig(),
        name: str = "sensor0",
    ) -> None:
        self.ring = ring
        self.readout = readout
        self.controller = MeasurementController(readout, controller_config)
        self.counter = PeriodCounter(readout)
        self.name = name
        self.calibration: Optional[object] = None
        self._readings: List[SensorReading] = []

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_configuration(
        cls,
        technology: Technology,
        configuration: RingConfiguration,
        library: Optional[CellLibrary] = None,
        readout: ReadoutConfig = ReadoutConfig(),
        name: str = "sensor0",
    ) -> "SmartTemperatureSensor":
        """Build a sensor from a technology and a ring configuration."""
        lib = library if library is not None else default_library(technology)
        ring = RingOscillator(lib, configuration)
        return cls(ring, readout=readout, name=name)

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #

    @property
    def enabled(self) -> bool:
        """Whether the oscillator is currently running."""
        return self.controller.oscillator_enabled

    @property
    def busy(self) -> bool:
        """The "measurement in progress" flag."""
        return self.controller.busy

    def measure(self, junction_temperature_c: float) -> SensorReading:
        """Run one complete measurement at the given junction temperature.

        The controller FSM is stepped through a full
        IDLE→SETTLE→MEASURE→DONE sequence (so the busy/enable behaviour
        is exercised), the oscillation period at the junction temperature
        is converted by the counter, and the calibrated temperature
        estimate is attached when a calibration is installed.
        """
        period = self.ring.period(junction_temperature_c)
        cycles = self.controller.run_measurement()
        reading = self.counter.convert(period)
        measured_period = self.counter.code_to_period(reading.code)
        estimate = None
        if self.calibration is not None:
            estimate = float(self.calibration.temperature(measured_period))
        result = SensorReading(
            code=reading.code,
            saturated=reading.saturated,
            conversion_time_s=cycles / self.readout.reference_clock_hz,
            oscillator_period_s=period,
            measured_period_s=measured_period,
            temperature_estimate_c=estimate,
            true_temperature_c=junction_temperature_c,
        )
        self._readings.append(result)
        return result

    def history(self) -> List[SensorReading]:
        """All readings taken so far (oldest first)."""
        return list(self._readings)

    def measurement_power_w(self, junction_temperature_c: float) -> float:
        """Average power drawn while a measurement is in progress."""
        return self.ring.dynamic_power(junction_temperature_c)

    def average_power_w(
        self, junction_temperature_c: float, measurement_rate_hz: float
    ) -> float:
        """Average power at a given measurement repetition rate.

        With auto-disable the oscillator only burns power during the
        conversion window, so the average power scales with the duty
        cycle — the quantitative form of the paper's self-heating
        argument.
        """
        if measurement_rate_hz < 0.0:
            raise TechnologyError("measurement rate must be non-negative")
        duty = min(1.0, measurement_rate_hz * self.readout.conversion_time_s)
        if not self.controller.config.auto_disable:
            duty = 1.0
        return duty * self.measurement_power_w(junction_temperature_c)

    # ------------------------------------------------------------------ #
    # transfer function and calibration
    # ------------------------------------------------------------------ #

    def transfer_function(
        self,
        temperatures_c: Optional[Sequence[float]] = None,
        scalar: bool = False,
    ) -> SensorTransferFunction:
        """Digital code over a temperature sweep (quantisation included).

        The sweep runs through the vectorized batch path by default: one
        vectorized period evaluation of the ring plus one batch counter
        conversion.  ``scalar=True`` keeps the original
        one-temperature-at-a-time loop as the reference oracle for the
        engine equivalence tests.
        """
        temps = (
            np.asarray(temperatures_c, dtype=float)
            if temperatures_c is not None
            else default_temperature_grid(points=21)
        )
        if scalar:
            codes = []
            measured_periods = []
            for temp in temps:
                reading = self.counter.convert(self.ring.period(float(temp)))
                codes.append(float(reading.code))
                measured_periods.append(self.counter.code_to_period(reading.code))
            return SensorTransferFunction(
                temperatures_c=temps,
                codes=np.asarray(codes),
                measured_periods_s=np.asarray(measured_periods),
            )
        periods = self.ring.period_series(temps)
        codes, _saturated = self.counter.convert_batch(periods)
        measured_periods = self.counter.codes_to_periods(codes)
        return SensorTransferFunction(
            temperatures_c=temps,
            codes=codes.astype(float),
            measured_periods_s=measured_periods,
        )

    def temperature_response(
        self, temperatures_c: Optional[Sequence[float]] = None
    ) -> TemperatureResponse:
        """Underlying (un-quantised) period-versus-temperature characteristic."""
        return analytical_response(self.ring, temperatures_c)

    def measured_period(self, junction_temperature_c: float) -> float:
        """Period estimate the digital block reconstructs at a temperature.

        Includes the counter quantisation; this is the quantity the
        calibration maps to temperature.
        """
        reading = self.counter.convert(self.ring.period(junction_temperature_c))
        return self.counter.code_to_period(reading.code)

    def measured_periods(self, temperatures_c: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`measured_period` over a temperature grid.

        One vectorized ring evaluation plus one batch counter
        conversion replaces the one-temperature-at-a-time loop; the
        quantised codes (and therefore the reconstructed periods) are
        identical to the scalar path element for element.
        """
        temps = np.asarray(temperatures_c, dtype=float)
        periods = self.ring.period_series(temps)
        codes, _saturated = self.counter.convert_batch(periods)
        return self.counter.codes_to_periods(codes)

    def calibrate_two_point(
        self, low_temperature_c: float = -40.0, high_temperature_c: float = 125.0
    ) -> LinearCalibration:
        """Install a two-point calibration using the sensor's own readings."""
        low_period = self.measured_period(low_temperature_c)
        high_period = self.measured_period(high_temperature_c)
        calibration = two_point_calibration(
            [low_period, high_period], [low_temperature_c, high_temperature_c]
        )
        self.calibration = calibration
        return calibration

    def calibrate_one_point(
        self,
        reference_temperature_c: float,
        design_transfer: SensorTransferFunction,
    ) -> LinearCalibration:
        """Install a one-point calibration against a design-time transfer curve.

        Parameters
        ----------
        reference_temperature_c:
            Temperature of the single calibration insertion.
        design_transfer:
            Transfer function of the *typical-process* sensor (the slope
            source); usually produced once at design time.
        """
        design = design_calibration(
            design_transfer.measured_periods_s, design_transfer.temperatures_c
        )
        period = self.measured_period(reference_temperature_c)
        calibration = one_point_calibration(
            period, reference_temperature_c, design.slope_c_per_second
        )
        self.calibration = calibration
        return calibration

    def install_calibration(self, calibration) -> None:
        """Install an externally constructed calibration object."""
        if not hasattr(calibration, "temperature"):
            raise TechnologyError(
                "a calibration must provide a temperature(code) method"
            )
        self.calibration = calibration

    def measurement_errors(
        self,
        temperatures_c: Optional[Sequence[float]] = None,
        scalar: bool = False,
    ) -> np.ndarray:
        """Calibrated measurement error (deg C) over a temperature sweep.

        The sweep runs through the vectorized batch path by default
        (one ring evaluation, one batch conversion, one elementwise
        calibration map).  ``scalar=True`` keeps the original
        one-temperature-at-a-time loop as the reference oracle for the
        engine equivalence tests.
        """
        if self.calibration is None:
            raise TechnologyError("calibrate the sensor before computing errors")
        temps = (
            np.asarray(temperatures_c, dtype=float)
            if temperatures_c is not None
            else default_temperature_grid(points=21)
        )
        if scalar:
            errors = []
            for temp in temps:
                estimate = float(self.calibration.temperature(self.measured_period(float(temp))))
                errors.append(estimate - float(temp))
            return np.asarray(errors)
        estimates = np.asarray(
            self.calibration.temperature(self.measured_periods(temps)), dtype=float
        )
        return estimates - temps

    def worst_case_error_c(
        self,
        temperatures_c: Optional[Sequence[float]] = None,
        scalar: bool = False,
    ) -> float:
        """Worst-case |measurement error| over the sweep."""
        return float(np.max(np.abs(self.measurement_errors(temperatures_c, scalar=scalar))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SmartTemperatureSensor({self.name!r}, ring={self.ring.label()!r}, "
            f"calibrated={self.calibration is not None})"
        )
