"""Register-map front end of the smart sensor unit.

A "smart" sensor in a cell-based SoC is accessed by software through a
memory-mapped register interface, not by poking Python objects.  This
module provides that last layer: a small register file with the fields a
real implementation of the paper's unit would expose —

========  ======  ==========================================================
address   name    contents
========  ======  ==========================================================
0x00      CTRL    bit0 START (self-clearing), bit1 ENABLE, bits[7:4] CHANNEL
0x04      STATUS  bit0 BUSY, bit1 DATA_VALID, bit2 SATURATED
0x08      DATA    last conversion code (read clears DATA_VALID)
0x0C      TEMP    calibrated temperature in signed 8.4 fixed point (deg C)
0x10      CONFIG  bits[15:0] gating-window cycles (read only here)
========  ======  ==========================================================

The register model drives the same behavioural sensor/multiplexer
objects used everywhere else, so software-style polling loops can be
tested end to end (see ``tests/test_core_registers.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..tech.parameters import TechnologyError
from .multiplexer import SensorMultiplexer
from .sensor import SensorReading

__all__ = ["RegisterMap", "SmartSensorRegisters"]

#: Register addresses (byte offsets).
CTRL_ADDR = 0x00
STATUS_ADDR = 0x04
DATA_ADDR = 0x08
TEMP_ADDR = 0x0C
CONFIG_ADDR = 0x10

#: CTRL bit positions.
CTRL_START_BIT = 0
CTRL_ENABLE_BIT = 1
CTRL_CHANNEL_SHIFT = 4
CTRL_CHANNEL_MASK = 0xF

#: STATUS bit positions.
STATUS_BUSY_BIT = 0
STATUS_DATA_VALID_BIT = 1
STATUS_SATURATED_BIT = 2


@dataclass(frozen=True)
class RegisterMap:
    """Addresses and field encodings of the unit (for documentation/tools)."""

    ctrl: int = CTRL_ADDR
    status: int = STATUS_ADDR
    data: int = DATA_ADDR
    temperature: int = TEMP_ADDR
    config: int = CONFIG_ADDR


def _to_fixed_point_8_4(value_c: float) -> int:
    """Encode a temperature as signed 8.4 fixed point (two's complement, 12 bits)."""
    scaled = int(round(value_c * 16.0))
    scaled = max(-2048, min(2047, scaled))
    return scaled & 0xFFF


def _from_fixed_point_8_4(raw: int) -> float:
    """Decode a signed 8.4 fixed-point temperature."""
    raw &= 0xFFF
    if raw >= 0x800:
        raw -= 0x1000
    return raw / 16.0


class SmartSensorRegisters:
    """Memory-mapped front end over a (multiplexed) smart sensor bank.

    Parameters
    ----------
    multiplexer:
        The sensor bank the registers control.  Single-sensor units just
        pass a one-channel multiplexer.
    """

    def __init__(self, multiplexer: SensorMultiplexer) -> None:
        self.multiplexer = multiplexer
        self.register_map = RegisterMap()
        self._channel_index = 0
        self._enable = False
        self._data_valid = False
        self._last_reading: Optional[SensorReading] = None
        self._channel_names = multiplexer.channel_names()
        if len(self._channel_names) > CTRL_CHANNEL_MASK + 1:
            raise TechnologyError(
                "the register interface supports at most 16 multiplexed channels"
            )
        #: Junction temperatures used when a conversion is started; in a
        #: real chip this is physical reality, in the model it is provided
        #: by the caller (e.g. the thermal model) before starting.
        self.junction_temperatures_c: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # environment hook
    # ------------------------------------------------------------------ #

    def set_junction_temperatures(self, temperatures_c: Mapping[str, float]) -> None:
        """Provide the junction temperature at every sensor site."""
        unknown = set(temperatures_c) - set(self._channel_names)
        if unknown:
            raise TechnologyError(f"unknown channels: {', '.join(sorted(unknown))}")
        self.junction_temperatures_c.update(
            {name: float(value) for name, value in temperatures_c.items()}
        )

    # ------------------------------------------------------------------ #
    # bus interface
    # ------------------------------------------------------------------ #

    def write(self, address: int, value: int) -> None:
        """Bus write access."""
        if value < 0:
            raise TechnologyError("register writes must be non-negative integers")
        if address == CTRL_ADDR:
            self._write_ctrl(value)
        elif address in (STATUS_ADDR, DATA_ADDR, TEMP_ADDR, CONFIG_ADDR):
            raise TechnologyError(f"register at 0x{address:02X} is read-only")
        else:
            raise TechnologyError(f"no register at address 0x{address:02X}")

    def read(self, address: int) -> int:
        """Bus read access."""
        if address == CTRL_ADDR:
            return self._read_ctrl()
        if address == STATUS_ADDR:
            return self._read_status()
        if address == DATA_ADDR:
            return self._read_data()
        if address == TEMP_ADDR:
            return self._read_temperature()
        if address == CONFIG_ADDR:
            return self._selected_sensor().readout.window_cycles & 0xFFFF
        raise TechnologyError(f"no register at address 0x{address:02X}")

    # ------------------------------------------------------------------ #
    # register behaviour
    # ------------------------------------------------------------------ #

    def _selected_sensor(self):
        name = self._channel_names[self._channel_index]
        return self.multiplexer.sensor(name)

    def _write_ctrl(self, value: int) -> None:
        self._enable = bool((value >> CTRL_ENABLE_BIT) & 1)
        channel = (value >> CTRL_CHANNEL_SHIFT) & CTRL_CHANNEL_MASK
        if channel >= len(self._channel_names):
            raise TechnologyError(
                f"CTRL selects channel {channel} but only "
                f"{len(self._channel_names)} channels exist"
            )
        self._channel_index = channel
        if (value >> CTRL_START_BIT) & 1:
            self._start_conversion()

    def _start_conversion(self) -> None:
        if not self._enable:
            raise TechnologyError("CTRL.START written while CTRL.ENABLE is clear")
        name = self._channel_names[self._channel_index]
        if name not in self.junction_temperatures_c:
            raise TechnologyError(
                f"no junction temperature provided for channel {name!r}; "
                "call set_junction_temperatures first"
            )
        self.multiplexer.select(name)
        self._last_reading = self.multiplexer.measure_selected(
            self.junction_temperatures_c[name]
        )
        self._data_valid = True

    def _read_ctrl(self) -> int:
        value = (int(self._enable) << CTRL_ENABLE_BIT)
        value |= self._channel_index << CTRL_CHANNEL_SHIFT
        return value  # START is self-clearing and always reads 0

    def _read_status(self) -> int:
        sensor = self._selected_sensor()
        value = int(sensor.busy) << STATUS_BUSY_BIT
        value |= int(self._data_valid) << STATUS_DATA_VALID_BIT
        if self._last_reading is not None and self._last_reading.saturated:
            value |= 1 << STATUS_SATURATED_BIT
        return value

    def _read_data(self) -> int:
        if self._last_reading is None:
            return 0
        self._data_valid = False
        return self._last_reading.code

    def _read_temperature(self) -> int:
        if self._last_reading is None or self._last_reading.temperature_estimate_c is None:
            return 0
        return _to_fixed_point_8_4(self._last_reading.temperature_estimate_c)

    # ------------------------------------------------------------------ #
    # software-style helpers
    # ------------------------------------------------------------------ #

    def convert_channel(self, channel: int, junction_temperature_c: float) -> float:
        """Driver-style helper: select, start, poll and decode one channel."""
        name = self._channel_names[channel]
        self.set_junction_temperatures({name: junction_temperature_c})
        self.write(CTRL_ADDR, (1 << CTRL_ENABLE_BIT) | (channel << CTRL_CHANNEL_SHIFT))
        self.write(
            CTRL_ADDR,
            (1 << CTRL_ENABLE_BIT) | (channel << CTRL_CHANNEL_SHIFT) | (1 << CTRL_START_BIT),
        )
        status = self.read(STATUS_ADDR)
        if not (status >> STATUS_DATA_VALID_BIT) & 1:
            raise TechnologyError("conversion did not complete")
        raw = self.read(TEMP_ADDR)
        self.read(DATA_ADDR)  # clear DATA_VALID as a driver would
        return _from_fixed_point_8_4(raw)
