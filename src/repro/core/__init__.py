"""The paper's contribution: the smart temperature sensor and its unit.

* :class:`~repro.core.sensor.SmartTemperatureSensor` — ring oscillator +
  counter readout + controller + calibration.
* :class:`~repro.core.multiplexer.SensorMultiplexer` — shared readout for
  several distributed sensors.
* :class:`~repro.core.mapping.ThermalMonitor` — distributed sensors on a
  floorplan with full-die thermal-map reconstruction.
"""

from .readout import CountReading, PeriodCounter, ReadoutConfig, ReferenceCounter
from .controller import (
    ControllerConfig,
    ControllerState,
    ControllerStatus,
    MeasurementController,
)
from .calibration import (
    CalibrationError,
    LinearCalibration,
    PolynomialCalibration,
    design_calibration,
    fit_polynomial_calibration,
    one_point_calibration,
    two_point_calibration,
)
from .sensor import SensorReading, SensorTransferFunction, SmartTemperatureSensor
from .multiplexer import ScanResult, SensorMultiplexer
from .sensor_bank import BankCalibration, BankScan, SensorBank
from .mapping import ThermalMonitor, ThermalMonitorReport
from .thermal_manager import (
    DtmBankResult,
    DtmResult,
    DtmTracePoint,
    DynamicThermalManager,
    PerformanceState,
    PolicyBank,
    ThrottlingPolicy,
)
from .registers import RegisterMap, SmartSensorRegisters

__all__ = [
    "CountReading",
    "PeriodCounter",
    "ReadoutConfig",
    "ReferenceCounter",
    "ControllerConfig",
    "ControllerState",
    "ControllerStatus",
    "MeasurementController",
    "CalibrationError",
    "LinearCalibration",
    "PolynomialCalibration",
    "design_calibration",
    "fit_polynomial_calibration",
    "one_point_calibration",
    "two_point_calibration",
    "SensorReading",
    "SensorTransferFunction",
    "SmartTemperatureSensor",
    "ScanResult",
    "SensorMultiplexer",
    "BankCalibration",
    "BankScan",
    "SensorBank",
    "ThermalMonitor",
    "ThermalMonitorReport",
    "DtmBankResult",
    "DtmResult",
    "DtmTracePoint",
    "DynamicThermalManager",
    "PerformanceState",
    "PolicyBank",
    "ThrottlingPolicy",
    "RegisterMap",
    "SmartSensorRegisters",
]
