"""Period-to-digital conversion.

The paper's smart unit contains "an additional digital processing block
to convert the oscillation period to temperature expressed in digital
format".  The standard cell-friendly way to do that — and the one
modelled here — is a counter gated by a reference-clock window:

* the ring oscillator output clocks a counter,
* the counter is enabled for a fixed number of reference-clock cycles
  (the *gating window*),
* the final count is ``floor(window / period)``, a digital code that
  decreases as temperature (and therefore period) rises.

The dual scheme (count reference cycles during N ring cycles) is also
provided because it is sometimes preferred when the ring is much slower
than the reference clock.  Both are pure behavioural models: they model
the quantisation, saturation and conversion time of the hardware, not
its gate-level structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..tech.parameters import TechnologyError

__all__ = ["ReadoutConfig", "CountReading", "PeriodCounter", "ReferenceCounter"]


@dataclass(frozen=True)
class ReadoutConfig:
    """Parameters of the counter-based readout.

    Attributes
    ----------
    reference_clock_hz:
        Frequency of the system reference clock that defines the gating
        window.
    window_cycles:
        Length of the gating window in reference-clock cycles.
    counter_bits:
        Width of the result counter; the code saturates rather than
        wrapping, as a safe hardware implementation would.
    """

    reference_clock_hz: float = 50.0e6
    window_cycles: int = 256
    counter_bits: int = 16

    def __post_init__(self) -> None:
        if self.reference_clock_hz <= 0.0:
            raise TechnologyError("reference clock frequency must be positive")
        if self.window_cycles <= 0:
            raise TechnologyError("window_cycles must be positive")
        if not 4 <= self.counter_bits <= 32:
            raise TechnologyError("counter_bits must lie in [4, 32]")

    @property
    def window_s(self) -> float:
        """Gating-window duration in seconds."""
        return self.window_cycles / self.reference_clock_hz

    @property
    def max_code(self) -> int:
        """Largest representable counter value."""
        return (1 << self.counter_bits) - 1

    @property
    def conversion_time_s(self) -> float:
        """Time one measurement occupies the unit (window plus handshake)."""
        # Two reference cycles of synchronisation before and after the window.
        return (self.window_cycles + 4) / self.reference_clock_hz


@dataclass(frozen=True)
class CountReading:
    """One digital conversion result."""

    code: int
    saturated: bool
    window_s: float

    def cycles_counted(self) -> int:
        return self.code


class PeriodCounter:
    """Counts ring-oscillator cycles inside a reference gating window."""

    def __init__(self, config: ReadoutConfig = ReadoutConfig()) -> None:
        self.config = config

    def convert(self, oscillation_period_s: float) -> CountReading:
        """Convert an oscillation period to a digital code.

        Parameters
        ----------
        oscillation_period_s:
            Period of the ring oscillator during the measurement.
        """
        if oscillation_period_s <= 0.0:
            raise TechnologyError("oscillation period must be positive")
        ideal = self.config.window_s / oscillation_period_s
        code = int(math.floor(ideal))
        saturated = code > self.config.max_code
        if saturated:
            code = self.config.max_code
        return CountReading(code=code, saturated=saturated, window_s=self.config.window_s)

    def convert_batch(
        self, oscillation_periods_s: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`convert` over an array of periods.

        Returns ``(codes, saturated)`` — an integer code array and a
        boolean saturation mask.  Produces exactly the codes the scalar
        path produces, one ``floor``/clip per element instead of one
        Python call per period; this is the conversion the batch engine
        uses for whole transfer-function sweeps.
        """
        periods = np.asarray(oscillation_periods_s, dtype=float)
        if np.any(periods <= 0.0):
            raise TechnologyError("oscillation periods must be positive")
        ideal = self.config.window_s / periods
        # floor(ideal) > max_code iff ideal >= max_code + 1; clamp before
        # the integer cast so a huge ratio saturates instead of wrapping
        # through int64 overflow.
        saturated = ideal >= self.config.max_code + 1.0
        codes = np.floor(np.minimum(ideal, float(self.config.max_code))).astype(np.int64)
        return codes, saturated

    def code_to_period(self, code: int) -> float:
        """Best-estimate period implied by a code (mid-quantisation-step)."""
        if code <= 0:
            raise TechnologyError("code must be positive to invert the conversion")
        return self.config.window_s / (code + 0.5)

    def codes_to_periods(self, codes: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`code_to_period` over an array of codes."""
        code_arr = np.asarray(codes)
        if np.any(code_arr <= 0):
            raise TechnologyError("codes must be positive to invert the conversion")
        return self.config.window_s / (code_arr + 0.5)

    def quantisation_step_s(self, oscillation_period_s: float) -> float:
        """Change of period corresponding to one LSB around an operating point."""
        reading = self.convert(oscillation_period_s)
        if reading.code <= 1:
            raise TechnologyError("code too small to define a quantisation step")
        upper = self.config.window_s / reading.code
        lower = self.config.window_s / (reading.code + 1)
        return upper - lower


class ReferenceCounter:
    """Counts reference-clock cycles during a fixed number of ring cycles.

    The dual of :class:`PeriodCounter`: the code *increases* with
    temperature because a hotter (slower) ring keeps the window open
    longer.  Useful when the ring oscillates slower than the reference
    clock or when a code proportional (rather than inversely
    proportional) to the period is preferred.
    """

    def __init__(self, config: ReadoutConfig = ReadoutConfig(), ring_cycles: int = 256) -> None:
        if ring_cycles <= 0:
            raise TechnologyError("ring_cycles must be positive")
        self.config = config
        self.ring_cycles = ring_cycles

    def convert(self, oscillation_period_s: float) -> CountReading:
        """Convert an oscillation period to a digital code."""
        if oscillation_period_s <= 0.0:
            raise TechnologyError("oscillation period must be positive")
        window = self.ring_cycles * oscillation_period_s
        ideal = window * self.config.reference_clock_hz
        code = int(math.floor(ideal))
        saturated = code > self.config.max_code
        if saturated:
            code = self.config.max_code
        return CountReading(code=code, saturated=saturated, window_s=window)

    def code_to_period(self, code: int) -> float:
        """Best-estimate period implied by a code."""
        if code <= 0:
            raise TechnologyError("code must be positive to invert the conversion")
        window = (code + 0.5) / self.config.reference_clock_hz
        return window / self.ring_cycles
