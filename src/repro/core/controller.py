"""Measurement-sequencing controller.

The paper lists three "smart" features of its thermal-management unit:
the oscillator can be *disabled* to minimise self-heating, an output
signal indicates that a *measurement is in progress*, and several ring
oscillators can be *multiplexed*.  The first two are the job of the
controller modelled here: a small finite-state machine that enables the
ring only for the duration of a conversion and exposes the busy flag.

The model is cycle-based on the reference clock: :meth:`step` advances
one reference cycle, which is the natural granularity of the counter
readout.  It is a behavioural model of the control FSM, not a gate-level
netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..tech.parameters import TechnologyError
from .readout import ReadoutConfig

__all__ = ["ControllerState", "ControllerConfig", "ControllerStatus", "MeasurementController"]


class ControllerState(Enum):
    """States of the measurement FSM."""

    IDLE = "idle"
    SETTLE = "settle"
    MEASURE = "measure"
    DONE = "done"


@dataclass(frozen=True)
class ControllerConfig:
    """Timing parameters of the controller.

    Attributes
    ----------
    settle_cycles:
        Reference cycles the oscillator is allowed to run before the
        gating window opens (start-up settling, matches the skip-cycles
        convention of the period extraction).
    done_cycles:
        Reference cycles the DONE state is held so downstream logic can
        latch the result.
    auto_disable:
        Whether the oscillator is switched off as soon as the window
        closes (the paper's anti-self-heating feature).  When false the
        ring free-runs between measurements.
    """

    settle_cycles: int = 8
    done_cycles: int = 2
    auto_disable: bool = True

    def __post_init__(self) -> None:
        if self.settle_cycles < 0:
            raise TechnologyError("settle_cycles must be non-negative")
        if self.done_cycles < 1:
            raise TechnologyError("done_cycles must be at least 1")


@dataclass(frozen=True)
class ControllerStatus:
    """Externally visible outputs of the controller after one cycle."""

    state: ControllerState
    oscillator_enabled: bool
    busy: bool
    data_valid: bool
    cycles_in_state: int


class MeasurementController:
    """Reference-clock-cycle behavioural model of the measurement FSM.

    Parameters
    ----------
    readout:
        Readout configuration; defines how long the MEASURE state lasts.
    config:
        Controller timing configuration.
    """

    def __init__(
        self,
        readout: ReadoutConfig = ReadoutConfig(),
        config: ControllerConfig = ControllerConfig(),
    ) -> None:
        self.readout = readout
        self.config = config
        self._state = ControllerState.IDLE
        self._cycles_in_state = 0
        self._start_pending = False
        self._enabled_cycles_total = 0
        self._measurements_completed = 0

    # ------------------------------------------------------------------ #
    # commands
    # ------------------------------------------------------------------ #

    def request_measurement(self) -> None:
        """Assert the start request; honoured at the next IDLE cycle."""
        self._start_pending = True

    def reset(self) -> None:
        """Return to IDLE immediately and clear any pending request."""
        self._state = ControllerState.IDLE
        self._cycles_in_state = 0
        self._start_pending = False

    # ------------------------------------------------------------------ #
    # state queries
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> ControllerState:
        return self._state

    @property
    def busy(self) -> bool:
        """The paper's "measurement in progress" output."""
        return self._state in (ControllerState.SETTLE, ControllerState.MEASURE)

    @property
    def oscillator_enabled(self) -> bool:
        if self._state in (ControllerState.SETTLE, ControllerState.MEASURE):
            return True
        return not self.config.auto_disable

    @property
    def measurements_completed(self) -> int:
        return self._measurements_completed

    @property
    def enabled_cycles_total(self) -> int:
        """Reference cycles the oscillator has spent enabled (self-heating proxy)."""
        return self._enabled_cycles_total

    def duty_cycle(self, total_cycles: int) -> float:
        """Fraction of ``total_cycles`` the oscillator was enabled."""
        if total_cycles <= 0:
            raise TechnologyError("total_cycles must be positive")
        return min(1.0, self._enabled_cycles_total / total_cycles)

    # ------------------------------------------------------------------ #
    # evolution
    # ------------------------------------------------------------------ #

    def step(self) -> ControllerStatus:
        """Advance one reference-clock cycle and return the visible outputs."""
        state = self._state
        next_state = state
        data_valid = False

        if state is ControllerState.IDLE:
            if self._start_pending:
                self._start_pending = False
                next_state = (
                    ControllerState.SETTLE
                    if self.config.settle_cycles > 0
                    else ControllerState.MEASURE
                )
        elif state is ControllerState.SETTLE:
            if self._cycles_in_state + 1 >= self.config.settle_cycles:
                next_state = ControllerState.MEASURE
        elif state is ControllerState.MEASURE:
            if self._cycles_in_state + 1 >= self.readout.window_cycles:
                next_state = ControllerState.DONE
        elif state is ControllerState.DONE:
            data_valid = True
            if self._cycles_in_state + 1 >= self.config.done_cycles:
                self._measurements_completed += 1
                next_state = ControllerState.IDLE

        if self.oscillator_enabled:
            self._enabled_cycles_total += 1

        if next_state is not state:
            self._cycles_in_state = 0
        else:
            self._cycles_in_state += 1
        self._state = next_state

        return ControllerStatus(
            state=self._state,
            oscillator_enabled=self.oscillator_enabled,
            busy=self.busy,
            data_valid=data_valid,
            cycles_in_state=self._cycles_in_state,
        )

    def run_measurement(self) -> int:
        """Run one full measurement and return the number of cycles it took."""
        self.request_measurement()
        cycles = 0
        limit = (
            self.config.settle_cycles
            + self.readout.window_cycles
            + self.config.done_cycles
            + 8
        )
        completed_before = self._measurements_completed
        while self._measurements_completed == completed_before:
            self.step()
            cycles += 1
            if cycles > limit:
                raise TechnologyError(
                    "controller did not complete a measurement within the expected time"
                )
        return cycles
