"""Multiplexed readout of several distributed sensors.

The paper's smart unit can "multiplex the readout from different
ring-oscillators distributed on different points for thermal mapping".
The :class:`SensorMultiplexer` models that sharing: one readout counter
and one controller serve many ring oscillators, selected one at a time.
Only the selected oscillator is enabled, so the multiplexer inherits the
self-heating benefit of the single-sensor controller, and the scan time
is the per-sensor conversion time multiplied by the channel count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..tech.parameters import TechnologyError
from .sensor import SensorReading, SmartTemperatureSensor

__all__ = ["ScanResult", "SensorMultiplexer"]


@dataclass(frozen=True)
class ScanResult:
    """Result of scanning every channel of the multiplexer once."""

    readings: Dict[str, SensorReading]
    total_time_s: float

    def codes(self) -> Dict[str, int]:
        return {name: reading.code for name, reading in self.readings.items()}

    def temperatures(self) -> Dict[str, Optional[float]]:
        return {
            name: reading.temperature_estimate_c
            for name, reading in self.readings.items()
        }

    def hottest_channel(self) -> str:
        """Channel with the highest estimated (or true) temperature."""
        def key(item) -> float:
            reading = item[1]
            if reading.temperature_estimate_c is not None:
                return reading.temperature_estimate_c
            return reading.true_temperature_c

        return max(self.readings.items(), key=key)[0]


class SensorMultiplexer:
    """A bank of smart sensors sharing one readout path.

    Parameters
    ----------
    sensors:
        The sensors to multiplex; their names must be unique.
    """

    def __init__(self, sensors: Sequence[SmartTemperatureSensor]) -> None:
        if not sensors:
            raise TechnologyError("a multiplexer needs at least one sensor")
        names = [sensor.name for sensor in sensors]
        if len(names) != len(set(names)):
            raise TechnologyError("sensor names must be unique within a multiplexer")
        self._sensors: Dict[str, SmartTemperatureSensor] = {
            sensor.name: sensor for sensor in sensors
        }
        self._selected: str = names[0]

    # ------------------------------------------------------------------ #
    # channel management
    # ------------------------------------------------------------------ #

    @property
    def channel_count(self) -> int:
        return len(self._sensors)

    def channel_names(self) -> List[str]:
        return list(self._sensors)

    @property
    def selected(self) -> str:
        """Name of the currently selected channel."""
        return self._selected

    def select(self, name: str) -> None:
        """Route the readout to the named channel."""
        if name not in self._sensors:
            raise TechnologyError(
                f"no channel named {name!r}; available: {', '.join(self._sensors)}"
            )
        self._selected = name

    def sensor(self, name: str) -> SmartTemperatureSensor:
        """Access one of the multiplexed sensors by name."""
        if name not in self._sensors:
            raise TechnologyError(f"no channel named {name!r}")
        return self._sensors[name]

    def sensors(self) -> List[SmartTemperatureSensor]:
        return list(self._sensors.values())

    # ------------------------------------------------------------------ #
    # measurements
    # ------------------------------------------------------------------ #

    def measure_selected(self, junction_temperature_c: float) -> SensorReading:
        """Measure the selected channel at its junction temperature."""
        return self._sensors[self._selected].measure(junction_temperature_c)

    def scan(self, junction_temperatures_c: Mapping[str, float]) -> ScanResult:
        """Measure every channel once, in channel order.

        Parameters
        ----------
        junction_temperatures_c:
            Local junction temperature per channel name; every channel
            must be covered.
        """
        missing = [name for name in self._sensors if name not in junction_temperatures_c]
        if missing:
            raise TechnologyError(
                f"missing junction temperatures for channels: {', '.join(missing)}"
            )
        readings: Dict[str, SensorReading] = {}
        total_time = 0.0
        for name in self._sensors:
            self.select(name)
            reading = self.measure_selected(float(junction_temperatures_c[name]))
            readings[name] = reading
            total_time += reading.conversion_time_s
        return ScanResult(readings=readings, total_time_s=total_time)

    def calibrate_all_two_point(
        self, low_temperature_c: float = -40.0, high_temperature_c: float = 125.0
    ) -> None:
        """Apply a two-point calibration to every channel."""
        for sensor in self._sensors.values():
            sensor.calibrate_two_point(low_temperature_c, high_temperature_c)
