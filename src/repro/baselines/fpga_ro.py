"""FPGA-style fixed ring-oscillator baseline (the paper's reference [5]).

Prior to the paper, ring-oscillator thermal sensing had been shown on
FPGAs (Lopez-Buedo et al.): the ring is built from whatever inverting
resources the fabric offers, with no freedom to choose transistor sizes
or gate types.  The paper argues that moving to standard cells both
keeps the design-style convenience and adds the optimisation freedom of
Sections 2 and 3.

The baseline modelled here captures the FPGA constraints:

* inverter-like stages only (the LUT's fixed drive), with the fabric's
  fixed, non-optimisable sizing (a nominal 2:1 P:N ratio),
* heavy interconnect loading, because consecutive stages route through
  the programmable fabric rather than abutting.

The result is a sensor with the same physics but no linearity knob — the
comparison target for the Fig. 3-style benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cells.factories import inverter
from ..cells.library import CellLibrary
from ..oscillator.config import RingConfiguration
from ..oscillator.ring import RingOscillator
from ..tech.parameters import Technology, TechnologyError

__all__ = ["FpgaRingConfig", "fpga_ring_oscillator"]


@dataclass(frozen=True)
class FpgaRingConfig:
    """Parameters describing the emulated FPGA fabric.

    Attributes
    ----------
    stage_count:
        Number of LUT-based inverting stages (FPGA sensors typically use
        longer chains because each stage is slow).
    routing_wire_length_um:
        Equivalent wire length of the programmable routing between
        consecutive stages; dominates the stage load.
    lut_input_cap_multiplier:
        How much larger a LUT input is than a plain inverter input
        (the stage additionally drives the LUT's pass-gate structure).
    """

    stage_count: int = 9
    routing_wire_length_um: float = 120.0
    lut_input_cap_multiplier: float = 3.0

    def __post_init__(self) -> None:
        if self.stage_count < 3 or self.stage_count % 2 == 0:
            raise TechnologyError("stage_count must be an odd number >= 3")
        if self.routing_wire_length_um < 0.0:
            raise TechnologyError("routing wire length must be non-negative")
        if self.lut_input_cap_multiplier < 1.0:
            raise TechnologyError("LUT input capacitance multiplier must be >= 1")


def fpga_ring_oscillator(
    technology: Technology, config: FpgaRingConfig = FpgaRingConfig()
) -> RingOscillator:
    """Build the FPGA-style baseline ring in the given technology.

    The fixed fabric sizing is emulated with an inverter whose widths are
    scaled by the LUT multiplier (fixed 2:1 ratio, no optimisation), and
    the programmable-routing load with a long inter-stage wire.
    """
    base = inverter(technology)
    lut_like = inverter(
        technology,
        nmos_width_um=base.nmos_width_um * config.lut_input_cap_multiplier,
        pmos_width_um=base.pmos_width_um * config.lut_input_cap_multiplier,
        name="LUT_INV",
    )
    library = CellLibrary(f"fpga_fabric_{technology.name}", technology)
    library.add(lut_like)
    configuration = RingConfiguration.uniform("LUT_INV", config.stage_count)
    return RingOscillator(
        library,
        configuration,
        wire_length_um=config.routing_wire_length_um,
    )
