"""Baseline sensors the paper positions itself against."""

from .diode_sensor import DiodeSensorConfig, DiodeSensorReading, DiodeTemperatureSensor
from .fpga_ro import FpgaRingConfig, fpga_ring_oscillator

__all__ = [
    "DiodeSensorConfig",
    "DiodeSensorReading",
    "DiodeTemperatureSensor",
    "FpgaRingConfig",
    "fpga_ring_oscillator",
]
