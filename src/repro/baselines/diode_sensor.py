"""Analogue diode-based temperature sensor baseline.

The paper's introduction points to the diode sensors of the Pentium 4
and the PowerPC thermal-assist unit as the incumbent solution, and
argues they fit poorly into a cell-based flow (full-custom analogue
design, need for an ADC).  To let the benchmark harness compare against
that incumbent on equal terms, this module models a ΔVBE (PTAT) diode
sensor with a finite-resolution ADC: excellent intrinsic linearity, but
an analogue signal chain whose offset/gain errors and ADC quantisation
limit the final accuracy — plus a design-style cost captured by the
``requires_analog_design`` flag the comparison tables report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..devices.diode import DiodeModel, DiodeParameters
from ..tech.parameters import TechnologyError, celsius_to_kelvin, kelvin_to_celsius

__all__ = ["DiodeSensorConfig", "DiodeSensorReading", "DiodeTemperatureSensor"]


@dataclass(frozen=True)
class DiodeSensorConfig:
    """Parameters of the analogue sensing chain.

    Attributes
    ----------
    bias_current_low_a / bias_current_high_a:
        The two bias currents of the ΔVBE measurement.
    adc_bits:
        Resolution of the ADC digitising the PTAT voltage.
    adc_full_scale_v:
        ADC input range.
    amplifier_gain:
        Gain applied to ΔVBE before the ADC (real parts amplify the
        ~50 mV PTAT signal to use the ADC range).
    gain_error:
        Relative gain error of the analogue chain (uncalibrated).
    offset_error_v:
        Input-referred offset of the analogue chain.
    """

    bias_current_low_a: float = 5.0e-6
    bias_current_high_a: float = 80.0e-6
    adc_bits: int = 10
    adc_full_scale_v: float = 1.2
    amplifier_gain: float = 10.0
    gain_error: float = 0.003
    offset_error_v: float = 0.4e-3

    def __post_init__(self) -> None:
        if self.bias_current_high_a <= self.bias_current_low_a:
            raise TechnologyError("high bias current must exceed the low bias current")
        if not 4 <= self.adc_bits <= 24:
            raise TechnologyError("adc_bits must lie in [4, 24]")
        if self.adc_full_scale_v <= 0.0 or self.amplifier_gain <= 0.0:
            raise TechnologyError("ADC full scale and amplifier gain must be positive")


@dataclass(frozen=True)
class DiodeSensorReading:
    """One conversion of the diode sensor."""

    code: int
    temperature_estimate_c: float
    true_temperature_c: float

    @property
    def error_c(self) -> float:
        return self.temperature_estimate_c - self.true_temperature_c


class DiodeTemperatureSensor:
    """Behavioural model of a ΔVBE analogue smart temperature sensor."""

    #: Diode sensors need full-custom analogue design; the ring sensor
    #: does not.  Reported by the comparison tables.
    requires_analog_design = True

    def __init__(
        self,
        config: DiodeSensorConfig = DiodeSensorConfig(),
        diode: Optional[DiodeModel] = None,
    ) -> None:
        self.config = config
        self.diode = diode or DiodeModel(DiodeParameters())

    # ------------------------------------------------------------------ #
    # signal chain
    # ------------------------------------------------------------------ #

    def ptat_voltage(self, temperature_c: float) -> float:
        """ΔVBE (V) at the junction temperature, before amplification."""
        temp_k = celsius_to_kelvin(temperature_c)
        return self.diode.delta_vbe(
            self.config.bias_current_low_a, self.config.bias_current_high_a, temp_k
        )

    def adc_code(self, temperature_c: float) -> int:
        """Digital output code including analogue errors and quantisation."""
        signal = self.ptat_voltage(temperature_c)
        amplified = (
            (signal + self.config.offset_error_v)
            * self.config.amplifier_gain
            * (1.0 + self.config.gain_error)
        )
        lsb = self.config.adc_full_scale_v / (1 << self.config.adc_bits)
        code = int(np.floor(amplified / lsb))
        return int(np.clip(code, 0, (1 << self.config.adc_bits) - 1))

    def _code_to_temperature_ideal(self, code: int) -> float:
        """Nominal (design-time) code-to-temperature conversion."""
        lsb = self.config.adc_full_scale_v / (1 << self.config.adc_bits)
        voltage = (code + 0.5) * lsb / self.config.amplifier_gain
        temp_k = self.diode.temperature_from_delta_vbe(
            voltage, self.config.bias_current_low_a, self.config.bias_current_high_a
        )
        return kelvin_to_celsius(temp_k)

    # ------------------------------------------------------------------ #
    # sensor interface (mirrors the smart ring sensor's surface)
    # ------------------------------------------------------------------ #

    def measure(self, temperature_c: float) -> DiodeSensorReading:
        """One conversion using the nominal code-to-temperature map."""
        code = self.adc_code(temperature_c)
        estimate = self._code_to_temperature_ideal(code)
        return DiodeSensorReading(
            code=code,
            temperature_estimate_c=estimate,
            true_temperature_c=temperature_c,
        )

    def measurement_errors(self, temperatures_c: Sequence[float]) -> np.ndarray:
        """Measurement error (deg C) over a sweep of true temperatures."""
        return np.asarray(
            [self.measure(float(t)).error_c for t in temperatures_c]
        )

    def worst_case_error_c(self, temperatures_c: Sequence[float]) -> float:
        return float(np.max(np.abs(self.measurement_errors(temperatures_c))))
