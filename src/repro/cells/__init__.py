"""Standard-cell library: cell models, factories, characterisation, export."""

from .cell import CellError, CellTopology, GateDelays, StandardCell
from .factories import buffer_cell, inverter, nand_gate, nor_gate
from .library import CellLibrary, default_library
from .timing import TimingTable, characterize_cell
from .characterize import SimulatedDelays, measure_cell_delays, model_accuracy
from .liberty import format_cell, format_library, write_library
from .power import CellPowerModel, GatePower

__all__ = [
    "CellError",
    "CellTopology",
    "GateDelays",
    "StandardCell",
    "buffer_cell",
    "inverter",
    "nand_gate",
    "nor_gate",
    "CellLibrary",
    "default_library",
    "TimingTable",
    "characterize_cell",
    "SimulatedDelays",
    "measure_cell_delays",
    "model_accuracy",
    "format_cell",
    "format_library",
    "write_library",
    "CellPowerModel",
    "GatePower",
]
