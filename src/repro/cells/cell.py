"""Standard-cell abstraction.

A :class:`StandardCell` bundles everything the rest of the library needs
to know about one library gate:

* its logical topology (how many inputs, how deep the NMOS/PMOS stacks
  are) via :class:`CellTopology`,
* its transistor sizing,
* its capacitive footprint (input capacitance per pin, output parasitic
  capacitance),
* its propagation delays versus temperature and load, evaluated with the
  analytical alpha-power model, and
* a transistor-level netlist builder so the same cell can be dropped
  into the MNA simulator (used for the Fig. 1 waveform and for
  validating the analytical model).

Only *inverting* single-stage gates are useful as ring-oscillator
stages; the topology records that property and the ring builder checks
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuit.netlist import Circuit
from ..delay.alpha_power import DelayModelOptions, DriveNetwork, gate_delay
from ..delay.load import input_capacitance, output_parasitic_capacitance
from ..devices.mosfet import DeviceSizing, MosfetModel
from ..tech.parameters import Technology, TechnologyError, celsius_to_kelvin
from ..tech.stacked import TechnologyArray

__all__ = ["CellTopology", "GateDelays", "StandardCell", "CellError"]


class CellError(ValueError):
    """Raised for invalid cell definitions or invalid cell usage."""


@dataclass(frozen=True)
class CellTopology:
    """Structural description of a single-stage static CMOS gate.

    Attributes
    ----------
    kind:
        ``"INV"``, ``"NAND"``, ``"NOR"`` or ``"BUF"``.
    fan_in:
        Number of logic inputs (1 for INV/BUF).
    nmos_stack_depth / pmos_stack_depth:
        Series devices between the output and the respective rail along
        the switching path.
    nmos_drains_on_output / pmos_drains_on_output:
        How many drains of each polarity load the output node (sets the
        parasitic output capacitance).
    inverting:
        Whether the gate inverts; ring-oscillator stages must invert.
    stages:
        Number of internal stages (1 for simple gates, 2 for BUF).
    """

    kind: str
    fan_in: int
    nmos_stack_depth: int
    pmos_stack_depth: int
    nmos_drains_on_output: int
    pmos_drains_on_output: int
    inverting: bool = True
    stages: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("INV", "NAND", "NOR", "BUF"):
            raise CellError(f"unsupported cell kind {self.kind!r}")
        if self.fan_in < 1:
            raise CellError("fan_in must be at least 1")
        if self.nmos_stack_depth < 1 or self.pmos_stack_depth < 1:
            raise CellError("stack depths must be at least 1")
        if self.nmos_drains_on_output < 1 or self.pmos_drains_on_output < 1:
            raise CellError("at least one drain of each polarity loads the output")
        if self.stages < 1:
            raise CellError("stages must be at least 1")

    @staticmethod
    def inverter() -> "CellTopology":
        return CellTopology("INV", 1, 1, 1, 1, 1, inverting=True)

    @staticmethod
    def nand(fan_in: int) -> "CellTopology":
        if fan_in < 2:
            raise CellError("a NAND gate needs at least 2 inputs")
        return CellTopology(
            "NAND",
            fan_in,
            nmos_stack_depth=fan_in,
            pmos_stack_depth=1,
            nmos_drains_on_output=1,
            pmos_drains_on_output=fan_in,
            inverting=True,
        )

    @staticmethod
    def nor(fan_in: int) -> "CellTopology":
        if fan_in < 2:
            raise CellError("a NOR gate needs at least 2 inputs")
        return CellTopology(
            "NOR",
            fan_in,
            nmos_stack_depth=1,
            pmos_stack_depth=fan_in,
            nmos_drains_on_output=fan_in,
            pmos_drains_on_output=1,
            inverting=True,
        )

    @staticmethod
    def buffer() -> "CellTopology":
        return CellTopology("BUF", 1, 1, 1, 1, 1, inverting=False, stages=2)


@dataclass(frozen=True)
class GateDelays:
    """Propagation delays of one gate at one operating point.

    When produced by a vectorized evaluation (ndarray of temperatures)
    ``tphl``/``tplh`` hold matching ndarrays and every derived property
    broadcasts elementwise.
    """

    tphl: Union[float, np.ndarray]
    tplh: Union[float, np.ndarray]

    @property
    def average(self) -> float:
        return 0.5 * (self.tphl + self.tplh)

    @property
    def pair_sum(self) -> float:
        """tpHL + tpLH — the per-stage contribution to a ring period."""
        return self.tphl + self.tplh

    @property
    def asymmetry(self) -> float:
        """Relative rise/fall asymmetry, 0 for perfectly balanced drive."""
        return abs(self.tphl - self.tplh) / self.average


class StandardCell:
    """One gate of the standard-cell library.

    Parameters
    ----------
    name:
        Library name, e.g. ``"INV_X1"``.
    technology:
        The CMOS technology the cell is implemented in.
    topology:
        Structural description.
    nmos_width_um / pmos_width_um:
        Width of each individual NMOS / PMOS transistor.  All transistors
        of a polarity share one width, which matches how simple library
        cells are drawn.
    delay_options:
        Stack-model / fit-factor options for the analytical delay model.
    """

    def __init__(
        self,
        name: str,
        technology: Technology,
        topology: CellTopology,
        nmos_width_um: float,
        pmos_width_um: float,
        delay_options: Optional[DelayModelOptions] = None,
    ) -> None:
        if nmos_width_um < technology.min_width_um - 1e-12:
            raise CellError(
                f"cell {name}: NMOS width {nmos_width_um} um is below the "
                f"technology minimum {technology.min_width_um} um"
            )
        if pmos_width_um < technology.min_width_um - 1e-12:
            raise CellError(
                f"cell {name}: PMOS width {pmos_width_um} um is below the "
                f"technology minimum {technology.min_width_um} um"
            )
        self.name = name
        self.technology = technology
        self.topology = topology
        self.nmos_width_um = float(nmos_width_um)
        self.pmos_width_um = float(pmos_width_um)
        self.delay_options = delay_options or DelayModelOptions()

    # ------------------------------------------------------------------ #
    # capacitances and geometry
    # ------------------------------------------------------------------ #

    def input_capacitance(self) -> float:
        """Capacitance (F) presented by one driven input pin."""
        return input_capacitance(self.technology, self.nmos_width_um, self.pmos_width_um)

    def output_parasitic_capacitance(self) -> float:
        """Self-loading drain capacitance (F) on the output node."""
        return output_parasitic_capacitance(
            self.technology,
            self.nmos_width_um,
            self.pmos_width_um,
            nmos_on_output=self.topology.nmos_drains_on_output,
            pmos_on_output=self.topology.pmos_drains_on_output,
        )

    def transistor_count(self) -> int:
        """Number of transistors in the cell."""
        per_stage = self.topology.fan_in * 2
        return per_stage * self.topology.stages

    def area_um2(self) -> float:
        """First-order layout area estimate (active width times pitch)."""
        pitch_um = 8.0 * self.technology.feature_size_um
        total_width = self.topology.fan_in * (self.nmos_width_um + self.pmos_width_um)
        return total_width * pitch_um * self.topology.stages

    @property
    def width_ratio(self) -> float:
        """PMOS-to-NMOS width ratio of the cell."""
        return self.pmos_width_um / self.nmos_width_um

    # ------------------------------------------------------------------ #
    # analytical delays
    # ------------------------------------------------------------------ #

    def delays(
        self, temperature_c: Union[float, np.ndarray], load_f: Union[float, np.ndarray]
    ) -> GateDelays:
        """Propagation delays at a junction temperature and external load.

        The external load is increased by the cell's own output parasitic
        capacitance before the alpha-power delay model is applied.
        ``temperature_c`` may be an ndarray, in which case the returned
        :class:`GateDelays` holds delay arrays evaluated over the whole
        grid in one vectorized call.  ``load_f`` may also be an ndarray
        (e.g. a load grid, or the per-sample loads of a stacked
        technology) as long as it broadcasts against the temperature
        argument; a cell bound to a
        :class:`~repro.tech.stacked.TechnologyArray` evaluates the whole
        ``(sample x temperature)`` population in this one call.
        """
        if np.any(np.asarray(load_f) < 0.0):
            raise CellError("load capacitance must be non-negative")
        if not self.topology.inverting and self.topology.kind != "BUF":
            raise CellError(f"cell {self.name} has an unsupported topology")
        total_load = load_f + self.output_parasitic_capacitance()
        pull_down = DriveNetwork(
            polarity="nmos",
            width_um=self.nmos_width_um,
            stack_depth=self.topology.nmos_stack_depth,
        )
        pull_up = DriveNetwork(
            polarity="pmos",
            width_um=self.pmos_width_um,
            stack_depth=self.topology.pmos_stack_depth,
        )
        tphl = gate_delay(
            self.technology, pull_down, total_load, temperature_c, self.delay_options
        )
        tplh = gate_delay(
            self.technology, pull_up, total_load, temperature_c, self.delay_options
        )
        if self.topology.stages == 2:
            # A buffer is two inverting stages back to back; the first
            # stage drives the second stage's input capacitance.
            internal_load = self.input_capacitance() + self.output_parasitic_capacitance()
            first_hl = gate_delay(
                self.technology, pull_down, internal_load, temperature_c, self.delay_options
            )
            first_lh = gate_delay(
                self.technology, pull_up, internal_load, temperature_c, self.delay_options
            )
            # Output falling edge is produced by first stage rising then
            # second stage falling, and vice versa.
            tphl, tplh = first_lh + tphl, first_hl + tplh
        return GateDelays(tphl=tphl, tplh=tplh)

    def stage_delay_sum(
        self, temperature_c: Union[float, np.ndarray], load_f: Union[float, np.ndarray]
    ) -> Union[float, np.ndarray]:
        """tpHL + tpLH, the quantity a ring-oscillator stage contributes."""
        return self.delays(temperature_c, load_f).pair_sum

    # ------------------------------------------------------------------ #
    # transistor-level netlist
    # ------------------------------------------------------------------ #

    def build_into(
        self,
        circuit: Circuit,
        input_node: str,
        output_node: str,
        vdd_node: str,
        temperature_k: float,
        instance: str = "",
    ) -> None:
        """Instantiate the cell's transistors into ``circuit``.

        Only one input is driven (``input_node``); the remaining inputs
        of NAND/NOR cells are tied to their non-controlling value (VDD
        for NAND, ground for NOR) so the gate behaves as an inverter —
        exactly how the paper wires complex gates into the ring
        oscillator.  The driven transistor is placed closest to the
        output node, the usual worst-case convention.
        """
        if self.topology.kind == "BUF":
            raise CellError(
                "transistor-level netlists are only generated for single-stage "
                "inverting cells (INV/NAND/NOR)"
            )
        if isinstance(self.technology, TechnologyArray):
            raise CellError(
                f"cell {self.name} is bound to a stacked technology population; "
                "netlists need one concrete sample — unstack it with "
                "TechnologyArray.technology_at(index) first"
            )
        prefix = instance or f"{self.name}_{len(circuit.elements)}"
        tech = self.technology

        def nmos_model() -> MosfetModel:
            return MosfetModel(
                tech.nmos, DeviceSizing(self.nmos_width_um), temperature_k
            )

        def pmos_model() -> MosfetModel:
            return MosfetModel(
                tech.pmos, DeviceSizing(self.pmos_width_um), temperature_k
            )

        n_depth = self.topology.nmos_stack_depth
        p_depth = self.topology.pmos_stack_depth
        fan_in = self.topology.fan_in

        # --- pull-down network -------------------------------------------------
        if n_depth == 1:
            # fan_in parallel NMOS devices, only one driven (others off at gnd
            # for NOR); for INV there is exactly one.
            circuit.add_mosfet(
                output_node, input_node, "gnd", nmos_model(), name=f"{prefix}_MN0"
            )
            for index in range(1, fan_in):
                circuit.add_mosfet(
                    output_node, "gnd", "gnd", nmos_model(), name=f"{prefix}_MN{index}"
                )
        else:
            # Series stack from output down to ground; driven device on top.
            previous = output_node
            for index in range(n_depth):
                is_last = index == n_depth - 1
                node_below = "gnd" if is_last else f"{prefix}_n{index}"
                gate = input_node if index == 0 else vdd_node
                circuit.add_mosfet(
                    previous, gate, node_below, nmos_model(), name=f"{prefix}_MN{index}"
                )
                previous = node_below

        # --- pull-up network ---------------------------------------------------
        if p_depth == 1:
            circuit.add_mosfet(
                output_node, input_node, vdd_node, pmos_model(), name=f"{prefix}_MP0"
            )
            for index in range(1, fan_in):
                circuit.add_mosfet(
                    output_node, vdd_node, vdd_node, pmos_model(), name=f"{prefix}_MP{index}"
                )
        else:
            # Series stack from VDD down to output; driven device next to the
            # output.
            previous = vdd_node
            for index in range(p_depth):
                is_last = index == p_depth - 1
                node_below = output_node if is_last else f"{prefix}_p{index}"
                gate = input_node if is_last else "gnd"
                circuit.add_mosfet(
                    previous, gate, node_below, pmos_model(), name=f"{prefix}_MP{index}"
                )
                previous = node_below

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.topology.kind}{self.topology.fan_in if self.topology.fan_in > 1 else ''} "
            f"Wn={self.nmos_width_um:.2f}um Wp={self.pmos_width_um:.2f}um "
            f"Cin={self.input_capacitance() * 1e15:.2f}fF"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StandardCell({self.name!r})"
