"""Cell power models: switching energy and temperature-dependent leakage.

The paper's motivation is thermal: power density rises with scaling and
clock frequency, so dies need built-in thermal monitoring.  To close
that loop inside the reproduction (workload power -> die temperature ->
sensor reading -> thermal-management action), the library needs a power
model for the logic the die is made of, not just for the sensor itself.

Two components are modelled per cell:

``switching energy``
    ``E = C_total * Vdd^2`` per output transition pair (the usual CV^2
    metric); dynamic power is then ``E * f * activity``.

``leakage power``
    Subthreshold leakage grows exponentially as the threshold voltage
    falls with temperature; modelled per transistor width from the
    technology's subthreshold slope.  This is the mechanism behind
    thermal runaway concerns and makes the thermal-management study
    meaningfully temperature-coupled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..tech.parameters import Technology, TechnologyError, celsius_to_kelvin
from ..tech.temperature import device_at, thermal_voltage
from .cell import StandardCell

__all__ = ["CellPowerModel", "GatePower"]

#: Subthreshold leakage per micron of width at nominal temperature with
#: the gate at the rail (A/um); representative of a 0.35 um process.
LEAKAGE_AT_NOMINAL_A_PER_UM = 5.0e-12


@dataclass(frozen=True)
class GatePower:
    """Power breakdown of one gate at one operating point."""

    dynamic_w: float
    leakage_w: float

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w


class CellPowerModel:
    """Switching-energy and leakage model for standard cells.

    Parameters
    ----------
    technology:
        The CMOS technology the cells belong to.
    leakage_at_nominal_a_per_um:
        Off-state channel leakage per micron of transistor width at the
        reference temperature.
    """

    def __init__(
        self,
        technology: Technology,
        leakage_at_nominal_a_per_um: float = LEAKAGE_AT_NOMINAL_A_PER_UM,
    ) -> None:
        if leakage_at_nominal_a_per_um <= 0.0:
            raise TechnologyError("leakage density must be positive")
        self.technology = technology
        self.leakage_at_nominal = leakage_at_nominal_a_per_um

    # ------------------------------------------------------------------ #
    # dynamic power
    # ------------------------------------------------------------------ #

    def switching_energy_j(self, cell: StandardCell, load_f: float) -> float:
        """Energy per full output transition pair (rise + fall), joules."""
        if load_f < 0.0:
            raise TechnologyError("load capacitance must be non-negative")
        total_cap = load_f + cell.output_parasitic_capacitance() + cell.input_capacitance()
        return total_cap * self.technology.vdd ** 2

    def dynamic_power_w(
        self,
        cell: StandardCell,
        load_f: float,
        clock_frequency_hz: float,
        activity: float = 0.1,
    ) -> float:
        """Average dynamic power at a clock frequency and switching activity."""
        if clock_frequency_hz < 0.0:
            raise TechnologyError("clock frequency must be non-negative")
        if not 0.0 <= activity <= 1.0:
            raise TechnologyError("activity factor must lie in [0, 1]")
        return self.switching_energy_j(cell, load_f) * clock_frequency_hz * activity

    # ------------------------------------------------------------------ #
    # leakage
    # ------------------------------------------------------------------ #

    def leakage_current_a(self, cell: StandardCell, temperature_c: float) -> float:
        """Total off-state leakage current of the cell at a temperature.

        The temperature dependence follows the subthreshold exponential:
        the threshold-voltage drop with temperature divided by the
        (temperature-dependent) subthreshold swing, which reproduces the
        familiar x10 leakage per ~60-80 C at this node.
        """
        temp_k = celsius_to_kelvin(temperature_c)
        total = 0.0
        for params, width in (
            (self.technology.nmos, cell.nmos_width_um * cell.topology.fan_in),
            (self.technology.pmos, cell.pmos_width_um * cell.topology.fan_in),
        ):
            nominal_device = device_at(params, self.technology.nominal_temperature_k)
            hot_device = device_at(params, temp_k)
            slope_factor = params.subthreshold_slope_mv_per_dec / (
                1000.0 * thermal_voltage(temp_k) * math.log(10.0)
            )
            slope_factor = max(slope_factor, 1.0)
            vth_drop = nominal_device.vth - hot_device.vth
            boost = math.exp(vth_drop / (slope_factor * thermal_voltage(temp_k)))
            total += self.leakage_at_nominal * width * boost
        return total * cell.topology.stages

    def leakage_power_w(self, cell: StandardCell, temperature_c: float) -> float:
        """Static power drawn from the supply at a temperature."""
        return self.leakage_current_a(cell, temperature_c) * self.technology.vdd

    # ------------------------------------------------------------------ #
    # combined
    # ------------------------------------------------------------------ #

    def gate_power(
        self,
        cell: StandardCell,
        temperature_c: float,
        clock_frequency_hz: float,
        load_f: float,
        activity: float = 0.1,
    ) -> GatePower:
        """Dynamic plus leakage power of one gate at an operating point."""
        return GatePower(
            dynamic_w=self.dynamic_power_w(cell, load_f, clock_frequency_hz, activity),
            leakage_w=self.leakage_power_w(cell, temperature_c),
        )

    def block_power_w(
        self,
        cell: StandardCell,
        gate_count: int,
        temperature_c: float,
        clock_frequency_hz: float,
        activity: float = 0.1,
    ) -> float:
        """Power of a block of ``gate_count`` identical gates.

        Each gate is assumed to drive a fan-out-of-4 load, the usual
        rule of thumb for synthesised logic.
        """
        if gate_count < 0:
            raise TechnologyError("gate_count must be non-negative")
        load = 4.0 * cell.input_capacitance()
        per_gate = self.gate_power(cell, temperature_c, clock_frequency_hz, load, activity)
        return gate_count * per_gate.total_w
