"""Cell-library container.

A :class:`CellLibrary` is a named collection of :class:`StandardCell`
objects for one technology.  The ring-oscillator configurations of the
paper's Fig. 3 refer to cells by their library names (``INV``,
``NAND2``, ``NAND3``, ``NOR2`` ...), so the library provides
case-insensitive lookup plus a default population covering all the gate
types the paper's optimisation explores.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..tech.parameters import Technology
from .cell import CellError, StandardCell
from .factories import buffer_cell, inverter, nand_gate, nor_gate

__all__ = ["CellLibrary", "default_library"]


class CellLibrary:
    """A collection of standard cells in a single technology."""

    def __init__(self, name: str, technology: Technology) -> None:
        self.name = name
        self.technology = technology
        self._cells: Dict[str, StandardCell] = {}

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #

    @staticmethod
    def _canonical(name: str) -> str:
        return name.strip().upper()

    def add(self, cell: StandardCell, overwrite: bool = False) -> None:
        """Add a cell; names are case-insensitive and must be unique."""
        if cell.technology is not self.technology and cell.technology.name != self.technology.name:
            raise CellError(
                f"cell {cell.name} belongs to technology {cell.technology.name!r}, "
                f"library {self.name!r} is for {self.technology.name!r}"
            )
        key = self._canonical(cell.name)
        if key in self._cells and not overwrite:
            raise CellError(f"cell {cell.name!r} already exists in library {self.name!r}")
        self._cells[key] = cell

    def get(self, name: str) -> StandardCell:
        """Look up a cell by name (case-insensitive).

        Bare gate names without a drive suffix resolve to the X1 variant,
        so ``"NAND3"`` finds ``"NAND3_X1"``; this is the form the ring
        configurations use.
        """
        key = self._canonical(name)
        if key in self._cells:
            return self._cells[key]
        with_drive = f"{key}_X1"
        if with_drive in self._cells:
            return self._cells[with_drive]
        raise CellError(
            f"library {self.name!r} has no cell named {name!r}; "
            f"available: {', '.join(sorted(self._cells))}"
        )

    def __contains__(self, name: str) -> bool:
        key = self._canonical(name)
        return key in self._cells or f"{key}_X1" in self._cells

    def __iter__(self) -> Iterator[StandardCell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def names(self) -> List[str]:
        """Sorted cell names."""
        return sorted(self._cells)

    def inverting_cells(self) -> List[StandardCell]:
        """All cells usable as a ring-oscillator stage."""
        return [cell for cell in self._cells.values() if cell.topology.inverting]

    def describe(self) -> str:
        """Multi-line human-readable listing of the library."""
        lines = [f"Library {self.name} ({self.technology.name}, {len(self)} cells)"]
        for name in self.names():
            lines.append("  " + self._cells[name].describe())
        return "\n".join(lines)


def default_library(
    tech: Technology,
    drives: Iterable[int] = (1, 2),
    max_fan_in: int = 4,
    name: Optional[str] = None,
) -> CellLibrary:
    """Build the default library for a technology.

    Contains INV, NAND2..NAND``max_fan_in``, NOR2..NOR``max_fan_in`` and
    BUF at the requested drive strengths — the cell set the paper's
    Fig. 3 configurations draw from.
    """
    if max_fan_in < 2:
        raise CellError("max_fan_in must be at least 2")
    library = CellLibrary(name or f"stdcells_{tech.name}", tech)
    for drive in drives:
        library.add(inverter(tech, drive=drive))
        library.add(buffer_cell(tech, drive=drive))
        for fan_in in range(2, max_fan_in + 1):
            library.add(nand_gate(tech, fan_in=fan_in, drive=drive))
            library.add(nor_gate(tech, fan_in=fan_in, drive=drive))
    return library
