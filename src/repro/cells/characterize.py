"""Simulation-based cell characterisation.

The analytical delay model (used for the large sweeps) is validated by
measuring the same propagation delays with the transistor-level MNA
simulator: the cell is placed in a small test bench — an ideal pulse
source with a finite slew driving the cell input, a capacitive load on
the output — and the 50 % crossing times are extracted from the
waveforms.  This is exactly the methodology a standard-cell
characterisation tool applies, scaled down to what the reproduction
needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..circuit.netlist import Circuit
from ..circuit.transient import TransientOptions, simulate_transient
from ..circuit.waveform import propagation_delay
from ..tech.parameters import celsius_to_kelvin
from .cell import CellError, GateDelays, StandardCell

__all__ = ["SimulatedDelays", "measure_cell_delays", "model_accuracy"]


@dataclass(frozen=True)
class SimulatedDelays:
    """Result of one simulation-based delay measurement."""

    cell_name: str
    temperature_c: float
    load_f: float
    simulated: GateDelays
    analytical: GateDelays

    @property
    def tphl_error_rel(self) -> float:
        """Relative error of the analytical tpHL versus simulation."""
        return abs(self.analytical.tphl - self.simulated.tphl) / self.simulated.tphl

    @property
    def tplh_error_rel(self) -> float:
        """Relative error of the analytical tpLH versus simulation."""
        return abs(self.analytical.tplh - self.simulated.tplh) / self.simulated.tplh


def measure_cell_delays(
    cell: StandardCell,
    temperature_c: float,
    load_f: Optional[float] = None,
    input_slew_s: float = 5.0e-11,
    timestep_s: float = 1.0e-12,
) -> SimulatedDelays:
    """Measure tpHL / tpLH of a cell with the transient simulator.

    Parameters
    ----------
    cell:
        Cell under test (single-stage inverting cells only).
    temperature_c:
        Junction temperature of the measurement.
    load_f:
        External load; defaults to 4x the cell input capacitance (a
        fan-out-of-4-like condition).
    input_slew_s:
        0-to-100 % transition time of the stimulus edges.
    timestep_s:
        Transient integration step.
    """
    if not cell.topology.inverting or cell.topology.stages != 1:
        raise CellError("simulation-based characterisation needs a single-stage inverting cell")
    if load_f is None:
        load_f = 4.0 * cell.input_capacitance()
    if load_f <= 0.0:
        raise CellError("load capacitance must be positive")

    tech = cell.technology
    temp_k = celsius_to_kelvin(temperature_c)
    vdd = tech.vdd

    # Window long enough for both edges: the pulse rises at pulse_delay and
    # falls after pulse_width; allow several analytical delays of margin.
    analytical = cell.delays(temperature_c, load_f)
    margin = 30.0 * max(analytical.tphl, analytical.tplh)
    pulse_delay = 5.0 * input_slew_s
    pulse_width = margin
    duration = pulse_delay + 2.0 * margin + 4.0 * input_slew_s

    circuit = Circuit(name=f"char_{cell.name}")
    circuit.add_voltage_source("vdd", "gnd", vdd, name="VDD")
    circuit.add_pulse_source(
        "in",
        "gnd",
        initial_v=0.0,
        pulsed_v=vdd,
        delay=pulse_delay,
        rise=input_slew_s,
        fall=input_slew_s,
        width=pulse_width,
        name="VIN",
    )
    cell.build_into(circuit, "in", "out", "vdd", temp_k, instance="dut")
    # External load plus the cell's own drain parasitics (the MOSFET
    # elements model only the channel current), matching what the
    # analytical model includes.
    circuit.add_capacitor("out", "gnd", load_f, name="CLOAD")
    circuit.add_capacitor(
        "out", "gnd", cell.output_parasitic_capacitance(), name="CPAR"
    )
    circuit.set_initial_conditions({"in": 0.0, "out": vdd, "vdd": vdd})

    options = TransientOptions(timestep=timestep_s, use_dc_start=False)
    result = simulate_transient(circuit, duration, options, record_nodes=["in", "out"])
    wave_in = result.waveform("in")
    wave_out = result.waveform("out")

    tphl = propagation_delay(wave_in, wave_out, vdd, edge="falling_output")
    tplh = propagation_delay(wave_in, wave_out, vdd, edge="rising_output")
    simulated = GateDelays(tphl=tphl, tplh=tplh)
    return SimulatedDelays(
        cell_name=cell.name,
        temperature_c=temperature_c,
        load_f=load_f,
        simulated=simulated,
        analytical=analytical,
    )


def model_accuracy(measurement: SimulatedDelays) -> float:
    """Worst-case relative error of the analytical model for a measurement."""
    return max(measurement.tphl_error_rel, measurement.tplh_error_rel)
