"""NLDM-style timing tables.

Standard sign-off flows characterise each cell's delay on a grid of
operating conditions and interpolate at analysis time.  The same idea is
used here: :class:`TimingTable` stores tpHL/tpLH on a (temperature x
load) grid and answers queries by bilinear interpolation.  The smart
sensor's calibration logic uses such tables as its "datasheet" view of a
ring configuration, and the Liberty exporter serialises them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..tech.stacked import TechnologyArray
from .cell import CellError, StandardCell

__all__ = ["TimingTable", "characterize_cell"]


@dataclass(frozen=True)
class TimingTable:
    """Bilinear-interpolated delay surface for one cell.

    Attributes
    ----------
    cell_name:
        The characterised cell.
    temperatures_c:
        Strictly increasing grid of junction temperatures (deg C).
    loads_f:
        Strictly increasing grid of load capacitances (F).
    tphl_s / tplh_s:
        Delay grids of shape ``(len(temperatures_c), len(loads_f))``.
    """

    cell_name: str
    temperatures_c: np.ndarray
    loads_f: np.ndarray
    tphl_s: np.ndarray
    tplh_s: np.ndarray

    def __post_init__(self) -> None:
        temps = np.asarray(self.temperatures_c, dtype=float)
        loads = np.asarray(self.loads_f, dtype=float)
        tphl = np.asarray(self.tphl_s, dtype=float)
        tplh = np.asarray(self.tplh_s, dtype=float)
        if temps.ndim != 1 or loads.ndim != 1:
            raise CellError("timing-table axes must be one-dimensional")
        if temps.size < 2 or loads.size < 2:
            raise CellError("timing tables need at least a 2x2 grid")
        if np.any(np.diff(temps) <= 0) or np.any(np.diff(loads) <= 0):
            raise CellError("timing-table axes must be strictly increasing")
        expected = (temps.size, loads.size)
        if tphl.shape != expected or tplh.shape != expected:
            raise CellError(
                f"delay grids must have shape {expected}, got {tphl.shape} / {tplh.shape}"
            )
        if np.any(tphl <= 0) or np.any(tplh <= 0):
            raise CellError("characterised delays must be positive")
        object.__setattr__(self, "temperatures_c", temps)
        object.__setattr__(self, "loads_f", loads)
        object.__setattr__(self, "tphl_s", tphl)
        object.__setattr__(self, "tplh_s", tplh)

    def _interpolate(
        self,
        grid: np.ndarray,
        temperature_c: Union[float, np.ndarray],
        load_f: float,
    ) -> Union[float, np.ndarray]:
        temps = self.temperatures_c
        loads = self.loads_f
        if not loads[0] <= load_f <= loads[-1]:
            raise CellError(
                f"load {load_f} F outside the characterised range "
                f"[{loads[0]:.3e}, {loads[-1]:.3e}]"
            )
        li = int(np.searchsorted(loads, load_f, side="right") - 1)
        li = min(li, loads.size - 2)
        l0, l1 = loads[li], loads[li + 1]
        fl = (load_f - l0) / (l1 - l0)

        if isinstance(temperature_c, np.ndarray):
            # Vectorized bilinear interpolation over a temperature grid.
            query = temperature_c.astype(float)
            if np.any(query < temps[0]) or np.any(query > temps[-1]):
                raise CellError(
                    f"temperatures outside the characterised range "
                    f"[{temps[0]}, {temps[-1]}]"
                )
            ti = np.searchsorted(temps, query, side="right") - 1
            ti = np.minimum(ti, temps.size - 2)
            t0 = temps[ti]
            t1 = temps[ti + 1]
            ft = (query - t0) / (t1 - t0)
            v00 = grid[ti, li]
            v01 = grid[ti, li + 1]
            v10 = grid[ti + 1, li]
            v11 = grid[ti + 1, li + 1]
            return (
                v00 * (1 - ft) * (1 - fl)
                + v01 * (1 - ft) * fl
                + v10 * ft * (1 - fl)
                + v11 * ft * fl
            )

        temperature_c = float(temperature_c)
        if not temps[0] <= temperature_c <= temps[-1]:
            raise CellError(
                f"temperature {temperature_c} C outside the characterised range "
                f"[{temps[0]}, {temps[-1]}]"
            )
        return float(self._interpolate(grid, np.asarray([temperature_c]), load_f)[0])

    def tphl(
        self, temperature_c: Union[float, np.ndarray], load_f: float
    ) -> Union[float, np.ndarray]:
        """Interpolated high-to-low propagation delay (s).

        ``temperature_c`` may be an ndarray; the query is then evaluated
        for the whole grid in one vectorized call.
        """
        return self._interpolate(self.tphl_s, temperature_c, load_f)

    def tplh(
        self, temperature_c: Union[float, np.ndarray], load_f: float
    ) -> Union[float, np.ndarray]:
        """Interpolated low-to-high propagation delay (s)."""
        return self._interpolate(self.tplh_s, temperature_c, load_f)

    def pair_sum(
        self, temperature_c: Union[float, np.ndarray], load_f: float
    ) -> Union[float, np.ndarray]:
        """tpHL + tpLH at the query point(s)."""
        return self.tphl(temperature_c, load_f) + self.tplh(temperature_c, load_f)

    def temperature_sensitivity(self, load_f: float) -> float:
        """Average d(tpHL+tpLH)/dT (s/K) over the characterised range."""
        temps = self.temperatures_c
        first = self.pair_sum(float(temps[0]), load_f)
        last = self.pair_sum(float(temps[-1]), load_f)
        return (last - first) / float(temps[-1] - temps[0])


def characterize_cell(
    cell: StandardCell,
    temperatures_c: Sequence[float],
    loads_f: Optional[Sequence[float]] = None,
) -> TimingTable:
    """Characterise a cell with the analytical delay model.

    Parameters
    ----------
    cell:
        The cell to characterise.
    temperatures_c:
        Temperature grid (deg C); the paper's range is -50..150.
    loads_f:
        Load-capacitance grid; defaults to 1x..8x the cell's own input
        capacitance, which covers typical fan-outs.
    """
    if isinstance(cell.technology, TechnologyArray):
        raise CellError(
            f"cell {cell.name} is bound to a stacked technology population; "
            "timing tables describe one sample — unstack with "
            "TechnologyArray.technology_at(index) and re-bind the cell first"
        )
    temps = np.asarray(sorted(set(float(t) for t in temperatures_c)))
    if temps.size < 2:
        raise CellError("at least two characterisation temperatures are required")
    if loads_f is None:
        cin = cell.input_capacitance()
        loads = np.asarray([cin * factor for factor in (1.0, 2.0, 4.0, 8.0)])
    else:
        loads = np.asarray(sorted(set(float(c) for c in loads_f)))
        if loads.size < 2:
            raise CellError("at least two characterisation loads are required")

    # One broadcast evaluation of the whole (temperature x load) grid:
    # the (T, 1) temperature column against the (L,) load row produces
    # both delay surfaces in a single pass through the delay model.
    delays = cell.delays(temps[:, None], loads)
    return TimingTable(
        cell_name=cell.name,
        temperatures_c=temps,
        loads_f=loads,
        tphl_s=delays.tphl,
        tplh_s=delays.tplh,
    )
