"""Factory functions for the individual library cells.

Sizing policy
-------------

Real standard-cell libraries at the 0.35 um node commonly draw the X1
drive strength of every simple gate with the *same* transistor widths as
the X1 inverter (about 1 um NMOS / 2 um PMOS), accepting that the
stacked transitions of NAND/NOR gates are slower rather than paying the
area to compensate them.  That policy is what makes the paper's
cell-based optimisation interesting: because the stacks are not
compensated, NAND-like and NOR-like gates weight the NMOS and PMOS
temperature behaviour differently from an inverter, giving the cell mix
its linearising power.  The factories implement this policy (scaled by
the drive strength) and allow explicit width overrides for exploring
alternative libraries.
"""

from __future__ import annotations

from typing import Optional

from ..tech.parameters import Technology
from .cell import CellError, CellTopology, StandardCell

__all__ = ["inverter", "nand_gate", "nor_gate", "buffer_cell", "UNIT_NMOS_WIDTH_FACTOR", "UNIT_PMOS_WIDTH_FACTOR"]

#: X1 NMOS width expressed in multiples of the technology feature size.
UNIT_NMOS_WIDTH_FACTOR = 3.0
#: X1 PMOS width expressed in multiples of the technology feature size.
UNIT_PMOS_WIDTH_FACTOR = 6.0


def _unit_widths(tech: Technology, drive: int) -> tuple:
    if drive < 1:
        raise CellError("drive strength must be a positive integer")
    wn = max(UNIT_NMOS_WIDTH_FACTOR * tech.feature_size_um, tech.min_width_um) * drive
    wp = max(UNIT_PMOS_WIDTH_FACTOR * tech.feature_size_um, tech.min_width_um) * drive
    return wn, wp


def inverter(
    tech: Technology,
    drive: int = 1,
    nmos_width_um: Optional[float] = None,
    pmos_width_um: Optional[float] = None,
    name: Optional[str] = None,
) -> StandardCell:
    """Create an inverter cell (``INV_X<drive>``)."""
    wn, wp = _unit_widths(tech, drive)
    return StandardCell(
        name=name or f"INV_X{drive}",
        technology=tech,
        topology=CellTopology.inverter(),
        nmos_width_um=nmos_width_um if nmos_width_um is not None else wn,
        pmos_width_um=pmos_width_um if pmos_width_um is not None else wp,
    )


def nand_gate(
    tech: Technology,
    fan_in: int = 2,
    drive: int = 1,
    nmos_width_um: Optional[float] = None,
    pmos_width_um: Optional[float] = None,
    name: Optional[str] = None,
) -> StandardCell:
    """Create a NAND cell (``NAND<fan_in>_X<drive>``)."""
    wn, wp = _unit_widths(tech, drive)
    return StandardCell(
        name=name or f"NAND{fan_in}_X{drive}",
        technology=tech,
        topology=CellTopology.nand(fan_in),
        nmos_width_um=nmos_width_um if nmos_width_um is not None else wn,
        pmos_width_um=pmos_width_um if pmos_width_um is not None else wp,
    )


def nor_gate(
    tech: Technology,
    fan_in: int = 2,
    drive: int = 1,
    nmos_width_um: Optional[float] = None,
    pmos_width_um: Optional[float] = None,
    name: Optional[str] = None,
) -> StandardCell:
    """Create a NOR cell (``NOR<fan_in>_X<drive>``)."""
    wn, wp = _unit_widths(tech, drive)
    return StandardCell(
        name=name or f"NOR{fan_in}_X{drive}",
        technology=tech,
        topology=CellTopology.nor(fan_in),
        nmos_width_um=nmos_width_um if nmos_width_um is not None else wn,
        pmos_width_um=pmos_width_um if pmos_width_um is not None else wp,
    )


def buffer_cell(
    tech: Technology,
    drive: int = 1,
    name: Optional[str] = None,
) -> StandardCell:
    """Create a non-inverting buffer (two cascaded inverters).

    Buffers are not valid ring stages (they do not invert) but are used
    by the smart-sensor unit to drive the counter clock input and the
    multiplexer routing.
    """
    wn, wp = _unit_widths(tech, drive)
    return StandardCell(
        name=name or f"BUF_X{drive}",
        technology=tech,
        topology=CellTopology.buffer(),
        nmos_width_um=wn,
        pmos_width_um=wp,
    )
