"""Liberty-like export of characterised timing.

Cell-based design flows exchange timing data in the Liberty (``.lib``)
format.  A full Liberty writer is out of scope, but exporting the
characterised tables in a Liberty-shaped text format makes the library's
"datasheet" inspectable with the same mental model designers use, and
gives the documentation example something concrete to show.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .cell import StandardCell
from .library import CellLibrary
from .timing import TimingTable, characterize_cell

__all__ = ["format_cell", "format_library", "write_library"]


def _format_values(rows: Iterable[Iterable[float]]) -> str:
    formatted_rows = []
    for row in rows:
        formatted_rows.append(", ".join(f"{value * 1e9:.6f}" for value in row))
    return " \\\n        ".join(f'"{row}"' for row in formatted_rows)


def format_cell(cell: StandardCell, table: Optional[TimingTable] = None,
                temperatures_c: Iterable[float] = (-50.0, 25.0, 150.0)) -> str:
    """Render one cell as a Liberty-like ``cell { ... }`` block.

    Delays are reported in nanoseconds, capacitances in picofarads,
    matching Liberty conventions.
    """
    if table is None:
        table = characterize_cell(cell, temperatures_c)
    cin_pf = cell.input_capacitance() * 1e12
    area = cell.area_um2()
    lines: List[str] = []
    lines.append(f"  cell ({cell.name}) {{")
    lines.append(f"    area : {area:.3f};")
    lines.append(f"    cell_footprint : \"{cell.topology.kind.lower()}\";")
    for pin_index in range(cell.topology.fan_in):
        lines.append(f"    pin (A{pin_index}) {{")
        lines.append("      direction : input;")
        lines.append(f"      capacitance : {cin_pf:.6f};")
        lines.append("    }")
    lines.append("    pin (Y) {")
    lines.append("      direction : output;")
    lines.append(
        "      function : \"{}\";".format(_logic_function(cell))
    )
    lines.append("      timing () {")
    lines.append("        related_pin : \"A0\";")
    lines.append("        /* index_1: temperature (C), index_2: load (pF) */")
    lines.append(
        "        index_1 (\"{}\");".format(
            ", ".join(f"{t:.1f}" for t in table.temperatures_c)
        )
    )
    lines.append(
        "        index_2 (\"{}\");".format(
            ", ".join(f"{c * 1e12:.6f}" for c in table.loads_f)
        )
    )
    lines.append("        cell_fall (delay_table) {")
    lines.append("          values ( \\")
    lines.append("        " + _format_values(table.tphl_s) + " \\")
    lines.append("          );")
    lines.append("        }")
    lines.append("        cell_rise (delay_table) {")
    lines.append("          values ( \\")
    lines.append("        " + _format_values(table.tplh_s) + " \\")
    lines.append("          );")
    lines.append("        }")
    lines.append("      }")
    lines.append("    }")
    lines.append("  }")
    return "\n".join(lines)


def _logic_function(cell: StandardCell) -> str:
    kind = cell.topology.kind
    fan_in = cell.topology.fan_in
    pins = [f"A{i}" for i in range(fan_in)]
    if kind == "INV":
        return "!A0"
    if kind == "BUF":
        return "A0"
    if kind == "NAND":
        return "!(" + " & ".join(pins) + ")"
    if kind == "NOR":
        return "!(" + " | ".join(pins) + ")"
    return "A0"


def format_library(
    library: CellLibrary, temperatures_c: Iterable[float] = (-50.0, 25.0, 150.0)
) -> str:
    """Render a whole library as Liberty-like text."""
    lines = [f"library ({library.name}) {{"]
    lines.append("  delay_model : table_lookup;")
    lines.append("  time_unit : \"1ns\";")
    lines.append("  capacitive_load_unit (1, pf);")
    lines.append(f"  nom_voltage : {library.technology.vdd:.2f};")
    lines.append("  nom_temperature : 25.0;")
    for name in library.names():
        cell = library.get(name)
        lines.append(format_cell(cell, temperatures_c=temperatures_c))
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_library(
    library: CellLibrary,
    path: str,
    temperatures_c: Iterable[float] = (-50.0, 25.0, 150.0),
) -> None:
    """Write the Liberty-like text of a library to ``path``."""
    text = format_library(library, temperatures_c)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
