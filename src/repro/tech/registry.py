"""Content-addressed, declarative technology registry.

A technology node used to be an opaque Python object looked up by bare
name — and that name was all the sweep-spec canonicalization hashed, so
the restart-surviving disk cache (:mod:`repro.serve.cache`) could serve
results computed under *different device parameters* whenever two hosts
(or one host after ``register_technology(..., overwrite=True)``)
disagreed about what a name meant.

This module makes technology identity content-addressed:

* :meth:`~repro.tech.parameters.Technology.to_dict` serializes a node as
  a versioned declarative bundle (plain JSON-compatible data, every
  parameter-range check re-run on load);
* :func:`technology_digest` computes a stable SHA-256 over the compact
  sorted-keys JSON encoding of that bundle, so the digest depends only
  on parameter *values* — never on dict key order or Python object
  identity — and two nodes share a digest iff they are value-equal;
* :class:`TechnologyRegistry` stores :class:`TechnologySpec` entries
  (bundle + digest, computed once at registration) and answers
  name→node, name→digest and digest-verification queries.

:mod:`repro.tech.libraries` declares the built-in nodes as data bundles
and registers them in the module-level default registry
(:func:`default_registry`); the sweep serializer
(:meth:`repro.engine.sweep.Sweep.to_dict`) emits registered nodes as
``{name, digest}`` pairs and verifies the digest on load, so every
content-addressed cache keys on what a technology *is*, not what it is
called.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from .parameters import Technology, TechnologyError

__all__ = [
    "TechnologyRegistry",
    "TechnologySpec",
    "default_registry",
    "technology_digest",
]


def technology_digest(tech: Technology) -> str:
    """Stable SHA-256 content digest of a technology node.

    The digest is computed over the compact, sorted-keys JSON encoding
    of :meth:`Technology.to_dict`, so it is invariant to dict key order
    and to how the node was constructed, and changes whenever any
    parameter value (or the bundle schema version) changes.
    """
    if not isinstance(tech, Technology):
        raise TechnologyError(
            f"technology_digest expects a Technology, got {type(tech).__name__}"
        )
    encoded = json.dumps(
        tech.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TechnologySpec:
    """One registered node: the live object, its declarative bundle and
    its content digest (computed once, at construction)."""

    technology: Technology
    payload: Dict[str, Any] = field(repr=False)
    digest: str

    @property
    def name(self) -> str:
        return self.technology.name

    @classmethod
    def from_technology(cls, tech: Technology) -> "TechnologySpec":
        """Wrap a live node (its bundle is just ``to_dict()``)."""
        return cls(
            technology=tech, payload=tech.to_dict(), digest=technology_digest(tech)
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TechnologySpec":
        """Instantiate from a declarative bundle, re-running validation.

        The digest is computed over the *canonical re-serialization* of
        the rebuilt node, so any JSON-roundtrip artifacts (key order,
        int-vs-float spellings of the same value) cannot change it.
        """
        return cls.from_technology(Technology.from_dict(payload))


class TechnologyRegistry:
    """Name → :class:`TechnologySpec` mapping with content digests.

    Registration computes the node's digest once; lookups are plain
    dict reads.  The module-level :func:`default_registry` instance is
    what :func:`repro.tech.libraries.get_technology` and the sweep
    serializer consult.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, TechnologySpec] = {}

    def register(
        self,
        tech: Union[Technology, Mapping[str, Any], TechnologySpec],
        overwrite: bool = False,
    ) -> TechnologySpec:
        """Register a node (live object, declarative bundle, or spec).

        Re-registering an existing name raises unless ``overwrite=True``
        — and an overwrite with different parameters changes the name's
        digest, so previously cached results keyed on the old digest
        become unreachable rather than silently stale.
        """
        if isinstance(tech, TechnologySpec):
            spec = tech
        elif isinstance(tech, Technology):
            spec = TechnologySpec.from_technology(tech)
        elif isinstance(tech, Mapping):
            spec = TechnologySpec.from_dict(tech)
        else:
            raise TechnologyError(
                f"cannot register a {type(tech).__name__}; expected a "
                f"Technology, a declarative bundle mapping or a TechnologySpec"
            )
        if spec.name in self._specs and not overwrite:
            raise TechnologyError(
                f"technology {spec.name!r} is already registered; pass overwrite=True"
            )
        self._specs[spec.name] = spec
        return spec

    def spec(self, name: str) -> TechnologySpec:
        try:
            return self._specs[name]
        except KeyError as exc:
            known = ", ".join(self.names())
            raise TechnologyError(
                f"unknown technology {name!r}; available: {known}"
            ) from exc

    def get(self, name: str) -> Technology:
        """Look up a registered node by name (unknown names raise)."""
        return self.spec(name).technology

    def digest(self, name: str) -> str:
        """The content digest registered for ``name`` (unknown names raise)."""
        return self.spec(name).digest

    def spec_for(self, tech: Technology) -> Optional[TechnologySpec]:
        """The spec registered under ``tech.name``, if it is value-equal.

        Returns ``None`` when the name is unknown *or* when the
        registered node differs from ``tech`` — the caller must then
        treat ``tech`` as unregistered (serialize it inline).
        """
        spec = self._specs.get(tech.name)
        if spec is not None and spec.technology == tech:
            return spec
        return None

    def names(self) -> List[str]:
        """All registered names, sorted by descending feature size."""
        return sorted(
            self._specs,
            key=lambda name: -self._specs[name].technology.feature_size_um,
        )

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


#: The process-wide registry holding the built-in nodes (populated by
#: :mod:`repro.tech.libraries` at import) plus any user registrations.
_DEFAULT_REGISTRY = TechnologyRegistry()


def default_registry() -> TechnologyRegistry:
    """The process-wide default :class:`TechnologyRegistry`."""
    return _DEFAULT_REGISTRY
