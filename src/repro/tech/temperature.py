"""Temperature dependence of the MOSFET small-set parameters.

The ring-oscillator temperature sensor works because the propagation
delay of a CMOS gate varies with the junction temperature.  Three
physical mechanisms drive that variation and are modelled here:

``mobility``
    Lattice scattering reduces the carrier mobility as temperature
    rises, following the usual power law
    ``mu(T) = mu(T0) * (T / T0) ** -m`` with ``m`` between roughly 1.2
    and 2.0.  Lower mobility means less drive current and longer delay.

``threshold voltage``
    The threshold-voltage magnitude decreases roughly linearly with
    temperature (0.5 mV/K to 2.5 mV/K).  A lower threshold means more
    overdrive, more current and *shorter* delay, partially cancelling
    the mobility term.  The balance between the two effects determines
    both the sensitivity and the curvature (non-linearity) of the
    delay-versus-temperature characteristic, which is exactly the
    degree of freedom the paper exploits.

``saturation velocity``
    Decreases weakly and approximately linearly with temperature.

All functions take the temperature in kelvin; helpers working in
Celsius live next to the experiment code, because the paper quotes its
sweep in Celsius.

Every function accepts either a scalar temperature or an ndarray of
temperatures and evaluates elementwise — this is the lowest layer of the
vectorized batch-evaluation path (:mod:`repro.engine`): one call with a
41-point temperature grid replaces 41 scalar calls.

The parameter block may equally be a stacked population
(:class:`~repro.tech.stacked.TransistorParameterArray`) whose fields are
``(samples, 1)`` columns: every function then broadcasts the sample axis
against the temperature axis, returning ``(samples, temperatures)``
matrices — one call with a 1000-sample population and a 41-point grid
replaces 41000 scalar calls.  All range clamps and validity checks are
applied elementwise in both layouts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from .parameters import (
    T_NOMINAL_K,
    TechnologyError,
    TransistorParameters,
    celsius_to_kelvin,
)

__all__ = [
    "mobility_at",
    "threshold_voltage_at",
    "saturation_velocity_at",
    "alpha_at",
    "thermal_voltage",
    "DeviceAtTemperature",
    "device_at",
]


#: A junction temperature: either a scalar or an ndarray of temperatures.
TemperatureLike = Union[float, np.ndarray]


def _check_temperature(temp_k: TemperatureLike) -> TemperatureLike:
    if isinstance(temp_k, np.ndarray):
        temps = temp_k.astype(float)
        if np.any(~(temps > 0.0)) or np.any(np.isnan(temps)):
            raise TechnologyError(
                f"temperatures must be positive kelvin, got {temps}"
            )
        return temps
    temp_k = float(temp_k)
    if not temp_k > 0.0 or math.isnan(temp_k):
        raise TechnologyError(f"temperature must be positive kelvin, got {temp_k}")
    return temp_k


def mobility_at(params: TransistorParameters, temp_k: float) -> float:
    """Carrier mobility (cm^2/V/s) at temperature ``temp_k``.

    Power-law lattice-scattering model referenced to ``T_NOMINAL_K``.
    """
    temp_k = _check_temperature(temp_k)
    ratio = temp_k / T_NOMINAL_K
    return params.mobility * ratio ** (-params.mobility_temp_exponent)


def threshold_voltage_at(params: TransistorParameters, temp_k: float) -> float:
    """Threshold-voltage magnitude (V) at temperature ``temp_k``.

    Linear model ``Vth(T) = Vth0 - k_vt * (T - T0)``.  The result is
    clamped at a small positive floor: far above the design range the
    linear extrapolation would otherwise make the device a depletion
    transistor, which the rest of the models do not support.
    """
    temp_k = _check_temperature(temp_k)
    vth = params.vth0 - params.vth_temp_coeff * (temp_k - T_NOMINAL_K)
    if isinstance(vth, np.ndarray):
        return np.maximum(vth, 0.05)
    return max(vth, 0.05)


def saturation_velocity_at(params: TransistorParameters, temp_k: float) -> float:
    """Saturation velocity (cm/s) at temperature ``temp_k``."""
    temp_k = _check_temperature(temp_k)
    factor = 1.0 - params.vsat_temp_coeff * (temp_k - T_NOMINAL_K)
    if isinstance(factor, np.ndarray):
        return params.vsat_cm_per_s * np.maximum(factor, 0.1)
    return params.vsat_cm_per_s * max(factor, 0.1)


def alpha_at(params: TransistorParameters, temp_k: float) -> float:
    """Velocity-saturation index at temperature ``temp_k``.

    The drift with temperature is small; the result is clamped to the
    physically meaningful interval [1, 2].
    """
    temp_k = _check_temperature(temp_k)
    alpha = params.alpha + params.alpha_temp_coeff * (temp_k - T_NOMINAL_K)
    if isinstance(alpha, np.ndarray):
        return np.clip(alpha, 1.0, 2.0)
    return min(2.0, max(1.0, alpha))


def thermal_voltage(temp_k: float) -> float:
    """Thermal voltage ``kT/q`` in volts."""
    temp_k = _check_temperature(temp_k)
    return 8.617333262e-5 * temp_k


@dataclass(frozen=True)
class DeviceAtTemperature:
    """Snapshot of the temperature-dependent parameters of one device type.

    Produced by :func:`device_at` and consumed by the device models and
    the analytical delay model, so that the temperature dependence is
    computed in exactly one place.

    When :func:`device_at` is called with an ndarray of temperatures the
    temperature-dependent fields (``temperature_k``, ``vth``,
    ``mobility``, ``alpha``, ``vsat_cm_per_s``,
    ``process_transconductance``) hold matching ndarrays.
    """

    polarity: str
    temperature_k: float
    vth: float
    mobility: float
    alpha: float
    vsat_cm_per_s: float
    process_transconductance: float
    gate_cap_f_per_um: float
    junction_cap_f_per_um: float
    overlap_cap_f_per_um: float
    body_effect_gamma: float
    channel_length_um: float

    @property
    def temperature_c(self) -> float:
        return self.temperature_k - 273.15


def device_at(params: TransistorParameters, temp_k: TemperatureLike) -> DeviceAtTemperature:
    """Evaluate all temperature-dependent parameters of a device type.

    Parameters
    ----------
    params:
        Nominal transistor parameters.
    temp_k:
        Junction temperature in kelvin — a scalar, or an ndarray to
        evaluate a whole temperature grid in one call.
    """
    temp_k = _check_temperature(temp_k)
    mobility = mobility_at(params, temp_k)
    mobility_um2 = mobility * 1.0e8
    return DeviceAtTemperature(
        polarity=params.polarity,
        temperature_k=temp_k,
        vth=threshold_voltage_at(params, temp_k),
        mobility=mobility,
        alpha=alpha_at(params, temp_k),
        vsat_cm_per_s=saturation_velocity_at(params, temp_k),
        process_transconductance=mobility_um2 * params.cox_f_per_um2,
        gate_cap_f_per_um=params.gate_cap_f_per_um,
        junction_cap_f_per_um=params.junction_cap_f_per_um,
        overlap_cap_f_per_um=params.overlap_cap_f_per_um,
        body_effect_gamma=params.body_effect_gamma,
        channel_length_um=params.channel_length_um,
    )


def device_at_celsius(
    params: TransistorParameters, temp_c: float
) -> DeviceAtTemperature:
    """Convenience wrapper of :func:`device_at` taking degrees Celsius."""
    return device_at(params, celsius_to_kelvin(temp_c))
