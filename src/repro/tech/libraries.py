"""Predefined technology nodes, declared as data.

The paper characterises its sensor in a 0.35 um CMOS process operated at
3.3 V.  We do not have the authors' foundry models, so :data:`CMOS035`
is a *synthetic but physically plausible* parameter set: threshold
voltages, mobilities, oxide capacitance and temperature coefficients are
taken from textbook values for that node (Rabaey, "Digital Integrated
Circuits"), and the velocity-saturation indices / threshold temperature
coefficients were chosen inside their physical ranges so that the
delay-versus-temperature curvature of NMOS-limited and PMOS-limited
transitions have opposite signs over -50 C..150 C.  That property is
what makes the paper's Fig. 2 (transistor-level Wp/Wn optimisation) and
Fig. 3 (cell-mix optimisation) possible in the first place; see
DESIGN.md for the substitution rationale.

Additional nodes (0.25, 0.18, 0.13 um) are provided for scaling studies
mentioned in the paper's introduction (junction temperature rising with
scaling); their parameter values follow constant-field-like scaling of
the 0.35 um node (:mod:`repro.tech.scaling`) adjusted to typical
published supply/threshold values.

Each node is a plain declarative bundle — the :meth:`Technology.to_dict`
payload — validated by :meth:`Technology.from_dict` and registered in
the process-wide :class:`~repro.tech.registry.TechnologyRegistry`, which
computes a stable content digest per node at registration.  Everything
downstream (sweep serialization, the serve caches) identifies a node by
that digest, so editing any number below re-keys every
content-addressed cache instead of silently serving stale physics.
"""

from __future__ import annotations

from typing import Iterable

from .parameters import TECHNOLOGY_DICT_VERSION, Technology
from .registry import TechnologySpec, default_registry

__all__ = [
    "CMOS035",
    "CMOS025",
    "CMOS018",
    "CMOS013",
    "available_technologies",
    "get_technology",
    "get_technology_digest",
    "register_technology",
]

#: Characterisation range shared by every built-in node (the paper
#: sweeps -50 C .. 150 C).
_DESIGN_RANGE = {"t_min_c": -50.0, "t_max_c": 150.0}

#: The paper's 0.35 um transistor blocks; the smaller nodes below are
#: declared as overrides of these.
_CMOS035_NMOS = {
    "polarity": "nmos",
    "vth0": 0.55,
    "mobility": 430.0,
    "alpha": 1.30,
    "channel_length_um": 0.35,
    "cox_f_per_um2": 4.6e-15,
    "vsat_cm_per_s": 8.0e6,
    "vth_temp_coeff": 0.9e-3,
    "mobility_temp_exponent": 1.55,
    "vsat_temp_coeff": 1.2e-4,
    "alpha_temp_coeff": 2.0e-4,
    "body_effect_gamma": 0.45,
    "subthreshold_slope_mv_per_dec": 85.0,
    "junction_cap_f_per_um": 1.1e-15,
    "overlap_cap_f_per_um": 0.35e-15,
}
_CMOS035_PMOS = {
    "polarity": "pmos",
    "vth0": 0.65,
    "mobility": 160.0,
    "alpha": 1.70,
    "channel_length_um": 0.35,
    "cox_f_per_um2": 4.6e-15,
    "vsat_cm_per_s": 6.5e6,
    "vth_temp_coeff": 1.9e-3,
    "mobility_temp_exponent": 1.25,
    "vsat_temp_coeff": 1.0e-4,
    "alpha_temp_coeff": 1.0e-4,
    "body_effect_gamma": 0.40,
    "subthreshold_slope_mv_per_dec": 90.0,
    "junction_cap_f_per_um": 1.3e-15,
    "overlap_cap_f_per_um": 0.35e-15,
}

#: The built-in nodes as declarative bundles (``Technology.to_dict``
#: payloads).  Ordered largest feature size first.
_NODE_BUNDLES = (
    {
        "version": TECHNOLOGY_DICT_VERSION,
        "name": "cmos035",
        "feature_size_um": 0.35,
        "vdd": 3.3,
        "nmos": _CMOS035_NMOS,
        "pmos": _CMOS035_PMOS,
        "wire_cap_f_per_um": 0.2e-15,
        "min_width_um": 0.5,
        "metal_layers": 4,
        "extra": _DESIGN_RANGE,
    },
    {
        "version": TECHNOLOGY_DICT_VERSION,
        "name": "cmos025",
        "feature_size_um": 0.25,
        "vdd": 2.5,
        "nmos": {
            **_CMOS035_NMOS,
            "vth0": 0.50,
            "channel_length_um": 0.25,
            "cox_f_per_um2": 6.0e-15,
            "alpha": 1.25,
            "mobility": 400.0,
        },
        "pmos": {
            **_CMOS035_PMOS,
            "vth0": 0.58,
            "channel_length_um": 0.25,
            "cox_f_per_um2": 6.0e-15,
            "alpha": 1.60,
            "mobility": 150.0,
        },
        "wire_cap_f_per_um": 0.21e-15,
        "min_width_um": 0.36,
        "metal_layers": 5,
        "extra": _DESIGN_RANGE,
    },
    {
        "version": TECHNOLOGY_DICT_VERSION,
        "name": "cmos018",
        "feature_size_um": 0.18,
        "vdd": 1.8,
        "nmos": {
            **_CMOS035_NMOS,
            "vth0": 0.45,
            "channel_length_um": 0.18,
            "cox_f_per_um2": 8.3e-15,
            "alpha": 1.22,
            "mobility": 370.0,
            "vth_temp_coeff": 0.8e-3,
        },
        "pmos": {
            **_CMOS035_PMOS,
            "vth0": 0.50,
            "channel_length_um": 0.18,
            "cox_f_per_um2": 8.3e-15,
            "alpha": 1.50,
            "mobility": 140.0,
            "vth_temp_coeff": 1.6e-3,
        },
        "wire_cap_f_per_um": 0.22e-15,
        "min_width_um": 0.27,
        "metal_layers": 6,
        "extra": _DESIGN_RANGE,
    },
    {
        "version": TECHNOLOGY_DICT_VERSION,
        "name": "cmos013",
        "feature_size_um": 0.13,
        "vdd": 1.2,
        "nmos": {
            **_CMOS035_NMOS,
            "vth0": 0.38,
            "channel_length_um": 0.13,
            "cox_f_per_um2": 11.0e-15,
            "alpha": 1.18,
            "mobility": 340.0,
            "vth_temp_coeff": 0.7e-3,
        },
        "pmos": {
            **_CMOS035_PMOS,
            "vth0": 0.42,
            "channel_length_um": 0.13,
            "cox_f_per_um2": 11.0e-15,
            "alpha": 1.45,
            "mobility": 130.0,
            "vth_temp_coeff": 1.4e-3,
        },
        "wire_cap_f_per_um": 0.24e-15,
        "min_width_um": 0.2,
        "metal_layers": 7,
        "extra": _DESIGN_RANGE,
    },
)

for _bundle in _NODE_BUNDLES:
    default_registry().register(_bundle)

CMOS035: Technology = default_registry().get("cmos035")
CMOS025: Technology = default_registry().get("cmos025")
CMOS018: Technology = default_registry().get("cmos018")
CMOS013: Technology = default_registry().get("cmos013")


def available_technologies() -> Iterable[str]:
    """Names of all registered technology nodes, sorted by feature size."""
    return default_registry().names()


def get_technology(name: str) -> Technology:
    """Look up a registered technology by name.

    Raises
    ------
    TechnologyError
        If the name is unknown.
    """
    return default_registry().get(name)


def get_technology_digest(name: str) -> str:
    """The content digest registered for ``name``.

    Raises
    ------
    TechnologyError
        If the name is unknown.
    """
    return default_registry().digest(name)


def register_technology(tech: Technology, overwrite: bool = False) -> TechnologySpec:
    """Add a user-defined technology to the process-wide registry.

    Parameters
    ----------
    tech:
        The technology to register — a live :class:`Technology` or a
        declarative bundle mapping (``Technology.to_dict`` payload).
    overwrite:
        If false (default), registering a name that already exists raises
        :class:`TechnologyError`.  An overwrite with different parameter
        values changes the name's content digest, so cached sweep results
        keyed on the old digest become unreachable (never served stale).

    Returns
    -------
    TechnologySpec
        The registered spec (node + declarative bundle + digest).
    """
    return default_registry().register(tech, overwrite=overwrite)
