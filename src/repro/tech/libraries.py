"""Predefined technology nodes.

The paper characterises its sensor in a 0.35 um CMOS process operated at
3.3 V.  We do not have the authors' foundry models, so :data:`CMOS035`
is a *synthetic but physically plausible* parameter set: threshold
voltages, mobilities, oxide capacitance and temperature coefficients are
taken from textbook values for that node (Rabaey, "Digital Integrated
Circuits"), and the velocity-saturation indices / threshold temperature
coefficients were chosen inside their physical ranges so that the
delay-versus-temperature curvature of NMOS-limited and PMOS-limited
transitions have opposite signs over -50 C..150 C.  That property is
what makes the paper's Fig. 2 (transistor-level Wp/Wn optimisation) and
Fig. 3 (cell-mix optimisation) possible in the first place; see
DESIGN.md for the substitution rationale.

Additional nodes (0.25, 0.18, 0.13 um) are provided for scaling studies
mentioned in the paper's introduction (junction temperature rising with
scaling); they are derived from the 0.35 um node by constant-field-like
scaling rules in :mod:`repro.tech.scaling` and then adjusted to typical
published supply/threshold values.
"""

from __future__ import annotations

from typing import Dict, Iterable

from .parameters import Technology, TechnologyError, TransistorParameters

__all__ = [
    "CMOS035",
    "CMOS025",
    "CMOS018",
    "CMOS013",
    "available_technologies",
    "get_technology",
    "register_technology",
]


def _make_cmos035() -> Technology:
    nmos = TransistorParameters(
        polarity="nmos",
        vth0=0.55,
        mobility=430.0,
        alpha=1.30,
        channel_length_um=0.35,
        cox_f_per_um2=4.6e-15,
        vsat_cm_per_s=8.0e6,
        vth_temp_coeff=0.9e-3,
        mobility_temp_exponent=1.55,
        vsat_temp_coeff=1.2e-4,
        alpha_temp_coeff=2.0e-4,
        body_effect_gamma=0.45,
        subthreshold_slope_mv_per_dec=85.0,
        junction_cap_f_per_um=1.1e-15,
        overlap_cap_f_per_um=0.35e-15,
    )
    pmos = TransistorParameters(
        polarity="pmos",
        vth0=0.65,
        mobility=160.0,
        alpha=1.70,
        channel_length_um=0.35,
        cox_f_per_um2=4.6e-15,
        vsat_cm_per_s=6.5e6,
        vth_temp_coeff=1.9e-3,
        mobility_temp_exponent=1.25,
        vsat_temp_coeff=1.0e-4,
        alpha_temp_coeff=1.0e-4,
        body_effect_gamma=0.40,
        subthreshold_slope_mv_per_dec=90.0,
        junction_cap_f_per_um=1.3e-15,
        overlap_cap_f_per_um=0.35e-15,
    )
    return Technology(
        name="cmos035",
        feature_size_um=0.35,
        vdd=3.3,
        nmos=nmos,
        pmos=pmos,
        wire_cap_f_per_um=0.2e-15,
        min_width_um=0.5,
        metal_layers=4,
        extra={"t_min_c": -50.0, "t_max_c": 150.0},
    )


def _make_cmos025() -> Technology:
    base = _make_cmos035()
    nmos = base.nmos.scaled(
        vth0=0.50,
        channel_length_um=0.25,
        cox_f_per_um2=6.0e-15,
        alpha=1.25,
        mobility=400.0,
    )
    pmos = base.pmos.scaled(
        vth0=0.58,
        channel_length_um=0.25,
        cox_f_per_um2=6.0e-15,
        alpha=1.60,
        mobility=150.0,
    )
    return Technology(
        name="cmos025",
        feature_size_um=0.25,
        vdd=2.5,
        nmos=nmos,
        pmos=pmos,
        wire_cap_f_per_um=0.21e-15,
        min_width_um=0.36,
        metal_layers=5,
        extra={"t_min_c": -50.0, "t_max_c": 150.0},
    )


def _make_cmos018() -> Technology:
    base = _make_cmos035()
    nmos = base.nmos.scaled(
        vth0=0.45,
        channel_length_um=0.18,
        cox_f_per_um2=8.3e-15,
        alpha=1.22,
        mobility=370.0,
        vth_temp_coeff=0.8e-3,
    )
    pmos = base.pmos.scaled(
        vth0=0.50,
        channel_length_um=0.18,
        cox_f_per_um2=8.3e-15,
        alpha=1.50,
        mobility=140.0,
        vth_temp_coeff=1.6e-3,
    )
    return Technology(
        name="cmos018",
        feature_size_um=0.18,
        vdd=1.8,
        nmos=nmos,
        pmos=pmos,
        wire_cap_f_per_um=0.22e-15,
        min_width_um=0.27,
        metal_layers=6,
        extra={"t_min_c": -50.0, "t_max_c": 150.0},
    )


def _make_cmos013() -> Technology:
    base = _make_cmos035()
    nmos = base.nmos.scaled(
        vth0=0.38,
        channel_length_um=0.13,
        cox_f_per_um2=11.0e-15,
        alpha=1.18,
        mobility=340.0,
        vth_temp_coeff=0.7e-3,
    )
    pmos = base.pmos.scaled(
        vth0=0.42,
        channel_length_um=0.13,
        cox_f_per_um2=11.0e-15,
        alpha=1.45,
        mobility=130.0,
        vth_temp_coeff=1.4e-3,
    )
    return Technology(
        name="cmos013",
        feature_size_um=0.13,
        vdd=1.2,
        nmos=nmos,
        pmos=pmos,
        wire_cap_f_per_um=0.24e-15,
        min_width_um=0.2,
        metal_layers=7,
        extra={"t_min_c": -50.0, "t_max_c": 150.0},
    )


CMOS035: Technology = _make_cmos035()
CMOS025: Technology = _make_cmos025()
CMOS018: Technology = _make_cmos018()
CMOS013: Technology = _make_cmos013()

_REGISTRY: Dict[str, Technology] = {
    tech.name: tech for tech in (CMOS035, CMOS025, CMOS018, CMOS013)
}


def available_technologies() -> Iterable[str]:
    """Names of all registered technology nodes, sorted by feature size."""
    return sorted(_REGISTRY, key=lambda name: -_REGISTRY[name].feature_size_um)


def get_technology(name: str) -> Technology:
    """Look up a registered technology by name.

    Raises
    ------
    TechnologyError
        If the name is unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(available_technologies())
        raise TechnologyError(
            f"unknown technology {name!r}; available: {known}"
        ) from exc


def register_technology(tech: Technology, overwrite: bool = False) -> None:
    """Add a user-defined technology to the registry.

    Parameters
    ----------
    tech:
        The technology to register.
    overwrite:
        If false (default), registering a name that already exists raises
        :class:`TechnologyError`.
    """
    if tech.name in _REGISTRY and not overwrite:
        raise TechnologyError(
            f"technology {tech.name!r} is already registered; pass overwrite=True"
        )
    _REGISTRY[tech.name] = tech
