"""Technology scaling helpers.

The paper's introduction motivates thermal monitoring with the
observation that junction temperature rises as technology scales (a
0.13 um chip was estimated to run 3.2x hotter than an equivalent
0.35 um chip).  The helpers here derive scaled technology variants from
a parent node using (generalised) constant-field scaling rules, and
estimate the power-density increase that drives the junction-temperature
trend.  They feed the scaling example and the thermal benches; they are
not needed for the core Fig. 2 / Fig. 3 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from .parameters import Technology, TechnologyError, TransistorParameters

__all__ = [
    "ScalingRules",
    "scale_technology",
    "power_density_scaling_factor",
]


@dataclass(frozen=True)
class ScalingRules:
    """Knobs of the generalised scaling transformation.

    ``dimension_factor`` S > 1 shrinks lateral dimensions by 1/S.
    ``voltage_factor`` U >= 1 shrinks voltages by 1/U.  Classic
    constant-field scaling uses U = S; constant-voltage scaling uses
    U = 1.  Threshold voltages in practice scale more slowly than the
    supply, captured by ``threshold_factor`` (also >= 1).

    The documented ranges are enforced: this transformation only
    *shrinks* a node.  A ``dimension_factor`` below 1 would silently
    "scale up" with inverted power-density math
    (:func:`power_density_scaling_factor` assumes S/U >= 1); derive
    larger nodes by scaling down from a larger parent instead.
    """

    dimension_factor: float
    voltage_factor: float
    threshold_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.dimension_factor > 1.0:
            raise TechnologyError(
                f"dimension_factor must be > 1 (S shrinks dimensions by 1/S), "
                f"got {self.dimension_factor}"
            )
        if not self.voltage_factor >= 1.0:
            raise TechnologyError(
                f"voltage_factor must be >= 1 (U shrinks voltages by 1/U), "
                f"got {self.voltage_factor}"
            )
        if not self.threshold_factor >= 1.0:
            raise TechnologyError(
                f"threshold_factor must be >= 1 (thresholds never scale up), "
                f"got {self.threshold_factor}"
            )


#: Below this threshold-voltage magnitude (V) the square-law/alpha-power
#: device models stop being credible; scaling past it is an error, not a
#: silent clamp.
_MIN_SCALED_VTH0 = 0.1


def _scale_device(
    params: TransistorParameters, rules: ScalingRules
) -> TransistorParameters:
    s = rules.dimension_factor
    vth0 = params.vth0 / rules.threshold_factor
    if vth0 < _MIN_SCALED_VTH0:
        raise TechnologyError(
            f"threshold_factor {rules.threshold_factor} scales the {params.polarity} "
            f"vth0 to {vth0:.3f} V, below the {_MIN_SCALED_VTH0} V validity floor "
            f"of the device models; reduce threshold_factor"
        )
    return params.scaled(
        vth0=vth0,
        channel_length_um=params.channel_length_um / s,
        cox_f_per_um2=params.cox_f_per_um2 * s,
        junction_cap_f_per_um=params.junction_cap_f_per_um / s,
        overlap_cap_f_per_um=params.overlap_cap_f_per_um / s,
    )


def scale_technology(tech: Technology, rules: ScalingRules, name: str) -> Technology:
    """Derive a scaled technology node from ``tech``.

    The result is a first-order estimate (mobility and velocity
    saturation are left unchanged); use the hand-tuned nodes in
    :mod:`repro.tech.libraries` when one is available for the target
    feature size.
    """
    s = rules.dimension_factor
    u = rules.voltage_factor
    new_vdd = tech.vdd / u
    nmos = _scale_device(tech.nmos, rules)
    pmos = _scale_device(tech.pmos, rules)
    if new_vdd <= max(nmos.vth0, pmos.vth0):
        raise TechnologyError(
            "scaling drives the supply below the threshold voltages; "
            "reduce threshold_factor or voltage_factor"
        )
    return Technology(
        name=name,
        feature_size_um=tech.feature_size_um / s,
        vdd=new_vdd,
        nmos=nmos,
        pmos=pmos,
        wire_cap_f_per_um=tech.wire_cap_f_per_um,
        min_width_um=tech.min_width_um / s,
        metal_layers=tech.metal_layers,
        extra=dict(tech.extra),
    )


def power_density_scaling_factor(rules: ScalingRules) -> float:
    """Relative power-density increase implied by the scaling rules.

    Under generalised scaling, power density scales as ``S^2 / U^2``
    for constant activity (switching energy per area falls as 1/(S*U^2)
    while frequency rises as S and device count per area as S^2).
    Constant-field scaling (U = S) keeps power density flat; real
    scaling keeps the supply higher than constant-field, which is the
    root of the junction-temperature trend cited in the paper.
    """
    s = rules.dimension_factor
    u = rules.voltage_factor
    return (s / u) ** 2
