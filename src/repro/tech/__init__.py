"""Technology and PVT (process/voltage/temperature) models.

Public surface:

* :class:`~repro.tech.parameters.Technology` and
  :class:`~repro.tech.parameters.TransistorParameters` — parameter
  containers.
* :data:`~repro.tech.libraries.CMOS035` (and smaller nodes) — predefined
  technologies declared as data bundles; the paper's experiments use the
  0.35 um node.
* :mod:`~repro.tech.registry` — the content-addressed registry: each
  node is a validated declarative bundle with a stable SHA-256 digest
  (:func:`~repro.tech.registry.technology_digest`), which is what sweep
  serialization and the serve caches key on.
* :mod:`~repro.tech.temperature` — temperature dependence of mobility,
  threshold voltage and saturation velocity.
* :mod:`~repro.tech.corners` — process corners and Monte-Carlo sampling.
* :mod:`~repro.tech.stacked` — struct-of-arrays populations
  (:class:`~repro.tech.stacked.TechnologyArray`) that broadcast a whole
  Monte-Carlo/corner sample set through the delay stack in one pass.
* :mod:`~repro.tech.scaling` — constant-field scaling helpers.
"""

from .parameters import (
    CELSIUS_OFFSET,
    T_NOMINAL_K,
    Technology,
    TechnologyError,
    TransistorParameters,
    celsius_to_kelvin,
    kelvin_to_celsius,
    validate_operating_point,
)
from .temperature import (
    DeviceAtTemperature,
    alpha_at,
    device_at,
    device_at_celsius,
    mobility_at,
    saturation_velocity_at,
    threshold_voltage_at,
    thermal_voltage,
)
from .registry import (
    TechnologyRegistry,
    TechnologySpec,
    default_registry,
    technology_digest,
)
from .libraries import (
    CMOS013,
    CMOS018,
    CMOS025,
    CMOS035,
    available_technologies,
    get_technology,
    get_technology_digest,
    register_technology,
)
from .corners import (
    STANDARD_CORNERS,
    CornerSpec,
    VariationModel,
    apply_corner,
    corner_technologies,
    sample_technologies,
    sample_technology_array,
)
from .stacked import (
    TechnologyArray,
    TransistorParameterArray,
    stack_technologies,
    stack_transistor_parameters,
)
from .scaling import ScalingRules, power_density_scaling_factor, scale_technology

__all__ = [
    "CELSIUS_OFFSET",
    "T_NOMINAL_K",
    "Technology",
    "TechnologyError",
    "TransistorParameters",
    "celsius_to_kelvin",
    "kelvin_to_celsius",
    "validate_operating_point",
    "DeviceAtTemperature",
    "alpha_at",
    "device_at",
    "device_at_celsius",
    "mobility_at",
    "saturation_velocity_at",
    "threshold_voltage_at",
    "thermal_voltage",
    "TechnologyRegistry",
    "TechnologySpec",
    "default_registry",
    "technology_digest",
    "CMOS013",
    "CMOS018",
    "CMOS025",
    "CMOS035",
    "available_technologies",
    "get_technology",
    "get_technology_digest",
    "register_technology",
    "STANDARD_CORNERS",
    "CornerSpec",
    "VariationModel",
    "apply_corner",
    "corner_technologies",
    "sample_technologies",
    "sample_technology_array",
    "TechnologyArray",
    "TransistorParameterArray",
    "stack_technologies",
    "stack_transistor_parameters",
    "ScalingRules",
    "power_density_scaling_factor",
    "scale_technology",
]
