"""Technology parameter containers.

The paper evaluates its sensor in a 0.35 um-class CMOS technology.  A
"technology" here is the set of electrical parameters needed by the
device models (:mod:`repro.devices`), the analytical delay models
(:mod:`repro.delay`) and the cell library (:mod:`repro.cells`):

* nominal supply voltage,
* per-device-type (NMOS / PMOS) threshold voltage, mobility-derived
  transconductance, velocity-saturation index (the Sakurai--Newton
  *alpha*), channel length, gate-oxide capacitance, junction and overlap
  capacitances,
* and the temperature coefficients of the threshold voltage, the carrier
  mobility and the saturation velocity.

Only plain dataclasses live here; the physics that turns these numbers
into temperature-dependent device behaviour is in
:mod:`repro.tech.temperature` and :mod:`repro.devices.mosfet`.

These scalar containers describe *one* technology sample.  Whole
Monte-Carlo or corner populations have struct-of-arrays siblings in
:mod:`repro.tech.stacked` (:class:`~repro.tech.stacked.TechnologyArray`,
:class:`~repro.tech.stacked.TransistorParameterArray`) that mirror these
classes field for field with ``(samples, 1)`` ndarray columns and
broadcast through the delay stack in one pass; the scalar dataclasses
here remain the single source of truth for field semantics and
validation rules.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

#: Reference temperature (kelvin) at which nominal parameters are quoted.
T_NOMINAL_K = 300.15

#: Absolute-zero offset used throughout the package to convert between
#: degrees Celsius (the unit used by the paper's figures) and kelvin
#: (the unit used by the physical models).
CELSIUS_OFFSET = 273.15

#: Boltzmann constant over electron charge (volts per kelvin); used by the
#: diode baseline sensor and by subthreshold terms.
K_B_OVER_Q = 8.617333262e-5

#: Schema version of the :meth:`Technology.to_dict` declarative bundle.
#: Bump when the bundle layout changes; digests are computed over the
#: versioned payload, so a bump re-keys every content-addressed cache.
TECHNOLOGY_DICT_VERSION = 1


def celsius_to_kelvin(temp_c: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
    """Convert a temperature from degrees Celsius to kelvin.

    Accepts a scalar or an ndarray (converted elementwise).
    """
    if isinstance(temp_c, np.ndarray):
        return temp_c.astype(float) + CELSIUS_OFFSET
    return float(temp_c) + CELSIUS_OFFSET


def kelvin_to_celsius(temp_k: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
    """Convert a temperature from kelvin to degrees Celsius.

    Accepts a scalar or an ndarray (converted elementwise).
    """
    if isinstance(temp_k, np.ndarray):
        return temp_k.astype(float) - CELSIUS_OFFSET
    return float(temp_k) - CELSIUS_OFFSET


class TechnologyError(ValueError):
    """Raised when a technology description is inconsistent or unphysical."""


@dataclass(frozen=True)
class TransistorParameters:
    """Electrical parameters of one MOSFET type (NMOS or PMOS).

    All values are quoted at the reference temperature ``T_NOMINAL_K``
    and for the *drawn* channel length of the technology.  Sign
    conventions follow the usual "magnitude" style: threshold voltages
    are positive numbers for both device polarities, and the device
    model applies the polarity.

    Attributes
    ----------
    polarity:
        ``"nmos"`` or ``"pmos"``.
    vth0:
        Zero-bias threshold-voltage magnitude (V) at the reference
        temperature.
    mobility:
        Effective channel mobility (cm^2 / V / s) at the reference
        temperature.
    alpha:
        Sakurai--Newton velocity-saturation index.  ``alpha = 2`` is the
        long-channel square law, ``alpha -> 1`` is fully
        velocity-saturated.
    channel_length_um:
        Effective channel length (micrometres).
    cox_f_per_um2:
        Gate-oxide capacitance per unit area (F / um^2).
    vsat_cm_per_s:
        Carrier saturation velocity (cm / s) at the reference
        temperature.
    vth_temp_coeff:
        Threshold-voltage temperature coefficient (V / K).  The
        threshold-voltage *magnitude* decreases by this amount per
        kelvin of temperature increase.
    mobility_temp_exponent:
        Exponent ``m`` of the mobility power law
        ``mu(T) = mu(T0) * (T / T0) ** -m``.
    vsat_temp_coeff:
        Fractional decrease of the saturation velocity per kelvin.
    alpha_temp_coeff:
        First-order temperature drift of the velocity-saturation index
        (1 / K); usually very small and positive (devices become less
        velocity saturated as drive current drops).
    body_effect_gamma:
        Body-effect coefficient (V^0.5) used for stacked transistors.
    subthreshold_slope_mv_per_dec:
        Subthreshold swing in mV/decade at the reference temperature;
        only used by leakage estimates.
    junction_cap_f_per_um:
        Drain/source junction capacitance per micron of device width
        (F / um), used for self-loading (parasitic output capacitance).
    overlap_cap_f_per_um:
        Gate-drain/source overlap capacitance per micron of width
        (F / um), counted on both the input capacitance and (Miller
        doubled) on the output.
    """

    polarity: str
    vth0: float
    mobility: float
    alpha: float
    channel_length_um: float
    cox_f_per_um2: float
    vsat_cm_per_s: float
    vth_temp_coeff: float
    mobility_temp_exponent: float
    vsat_temp_coeff: float = 1.0e-4
    alpha_temp_coeff: float = 0.0
    body_effect_gamma: float = 0.4
    subthreshold_slope_mv_per_dec: float = 85.0
    junction_cap_f_per_um: float = 1.0e-15
    overlap_cap_f_per_um: float = 0.35e-15

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise TechnologyError(
                f"polarity must be 'nmos' or 'pmos', got {self.polarity!r}"
            )
        if self.vth0 <= 0.0:
            raise TechnologyError("vth0 must be a positive magnitude")
        if self.mobility <= 0.0:
            raise TechnologyError("mobility must be positive")
        if not 1.0 <= self.alpha <= 2.0:
            raise TechnologyError(
                f"alpha must lie in [1, 2] (velocity saturated .. square law), "
                f"got {self.alpha}"
            )
        if self.channel_length_um <= 0.0:
            raise TechnologyError("channel_length_um must be positive")
        if self.cox_f_per_um2 <= 0.0:
            raise TechnologyError("cox_f_per_um2 must be positive")
        if self.vsat_cm_per_s <= 0.0:
            raise TechnologyError("vsat_cm_per_s must be positive")
        if self.mobility_temp_exponent < 0.0:
            raise TechnologyError("mobility_temp_exponent must be >= 0")
        if self.vth_temp_coeff < 0.0:
            raise TechnologyError(
                "vth_temp_coeff is the magnitude of dVth/dT and must be >= 0"
            )

    @property
    def gate_cap_f_per_um(self) -> float:
        """Gate capacitance per micron of width (F / um).

        ``Cox * L`` plus the overlap contribution of source and drain.
        """
        return (
            self.cox_f_per_um2 * self.channel_length_um
            + 2.0 * self.overlap_cap_f_per_um
        )

    @property
    def process_transconductance(self) -> float:
        """``k' = mu * Cox`` in A / V^2 for a square device (W = L).

        Mobility is converted from cm^2/V/s to um^2/V/s so that the
        result is consistent with widths and lengths in micrometres and
        capacitances in F/um^2.
        """
        mobility_um2 = self.mobility * 1.0e8  # cm^2 -> um^2
        return mobility_um2 * self.cox_f_per_um2

    def scaled(self, **overrides: float) -> "TransistorParameters":
        """Return a copy with selected fields replaced.

        Used by process-corner generation and Monte-Carlo sampling.
        """
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain JSON-compatible dict (every field)."""
        payload: Dict[str, Any] = {"polarity": self.polarity}
        for name in _TRANSISTOR_FIELD_NAMES:
            payload[name] = float(getattr(self, name))
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TransistorParameters":
        """Rebuild from :meth:`to_dict` output, re-running all validation.

        Unknown keys are rejected rather than ignored: a typo'd field in
        a declarative technology bundle must fail loudly, not silently
        fall back to a default value.
        """
        if not isinstance(payload, Mapping):
            raise TechnologyError(
                f"transistor parameters must be a mapping, got "
                f"{type(payload).__name__}"
            )
        allowed = {"polarity", *_TRANSISTOR_FIELD_NAMES}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise TechnologyError(
                f"unknown transistor parameter field(s) {unknown}; "
                f"allowed: {sorted(allowed)}"
            )
        kwargs: Dict[str, Any] = {}
        for key, value in payload.items():
            kwargs[key] = value if key == "polarity" else _as_float(key, value)
        try:
            return cls(**kwargs)
        except TypeError as error:  # missing required field
            raise TechnologyError(
                f"incomplete transistor parameters: {error}"
            ) from error


#: Every numeric field of :class:`TransistorParameters`, in declaration
#: order — the serialization schema for one transistor block.
_TRANSISTOR_FIELD_NAMES = tuple(
    f.name for f in dataclasses.fields(TransistorParameters) if f.name != "polarity"
)


def _as_float(name: str, value: Any) -> float:
    """Coerce a serialized numeric field, rejecting non-finite values."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TechnologyError(
            f"field {name!r} must be a number, got {type(value).__name__}"
        )
    result = float(value)
    if not math.isfinite(result):
        raise TechnologyError(f"field {name!r} must be finite, got {result!r}")
    return result


@dataclass(frozen=True)
class Technology:
    """A complete CMOS technology description.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"cmos035"``).
    feature_size_um:
        Drawn feature size in micrometres (0.35 for the paper's node).
    vdd:
        Nominal supply voltage (V).
    nmos / pmos:
        Per-polarity transistor parameters.
    wire_cap_f_per_um:
        Local interconnect capacitance per micron of wire (F / um); the
        ring oscillator stages are abutted so this only adds a small
        constant per stage.
    min_width_um:
        Minimum drawn transistor width.
    metal_layers:
        Number of routing layers (informational; used by the floorplan
        area model).
    """

    name: str
    feature_size_um: float
    vdd: float
    nmos: TransistorParameters
    pmos: TransistorParameters
    wire_cap_f_per_um: float = 0.2e-15
    min_width_um: float = 0.5
    metal_layers: int = 4
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.feature_size_um <= 0.0:
            raise TechnologyError("feature_size_um must be positive")
        if self.vdd <= 0.0:
            raise TechnologyError("vdd must be positive")
        if self.nmos.polarity != "nmos":
            raise TechnologyError("nmos parameters must have polarity 'nmos'")
        if self.pmos.polarity != "pmos":
            raise TechnologyError("pmos parameters must have polarity 'pmos'")
        if self.vdd <= max(self.nmos.vth0, self.pmos.vth0):
            raise TechnologyError(
                "vdd must exceed both threshold voltages for the gates to switch"
            )

    def transistor(self, polarity: str) -> TransistorParameters:
        """Return the parameter block for ``"nmos"`` or ``"pmos"``."""
        if polarity == "nmos":
            return self.nmos
        if polarity == "pmos":
            return self.pmos
        raise TechnologyError(f"unknown polarity {polarity!r}")

    @property
    def nominal_temperature_k(self) -> float:
        """Reference temperature at which the parameters are quoted."""
        return T_NOMINAL_K

    def with_supply(self, vdd: float) -> "Technology":
        """Return a copy of the technology operated at a different supply."""
        return dataclasses.replace(self, vdd=vdd)

    def with_transistors(
        self,
        nmos: Optional[TransistorParameters] = None,
        pmos: Optional[TransistorParameters] = None,
    ) -> "Technology":
        """Return a copy with one or both transistor blocks replaced."""
        return dataclasses.replace(
            self,
            nmos=nmos if nmos is not None else self.nmos,
            pmos=pmos if pmos is not None else self.pmos,
        )

    def beta_ratio(self) -> float:
        """Mobility ratio ``mu_n / mu_p`` at the reference temperature.

        This is the classic rule-of-thumb value for the PMOS/NMOS width
        ratio that equalises rise and fall drive strength.
        """
        return self.nmos.mobility / self.pmos.mobility

    def thermal_design_range_c(self) -> tuple:
        """Temperature range (deg C) over which the sensor is characterised.

        The paper sweeps -50 C to 150 C; stored in ``extra`` so corners
        and scaled nodes can override it.
        """
        low = self.extra.get("t_min_c", -50.0)
        high = self.extra.get("t_max_c", 150.0)
        return (low, high)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a versioned, JSON-compatible declarative bundle.

        The payload is the complete parameter content of the node — the
        input to :func:`repro.tech.registry.technology_digest` — so two
        technologies serialize identically iff they are value-equal.
        """
        return {
            "version": TECHNOLOGY_DICT_VERSION,
            "name": self.name,
            "feature_size_um": float(self.feature_size_um),
            "vdd": float(self.vdd),
            "nmos": self.nmos.to_dict(),
            "pmos": self.pmos.to_dict(),
            "wire_cap_f_per_um": float(self.wire_cap_f_per_um),
            "min_width_um": float(self.min_width_um),
            "metal_layers": int(self.metal_layers),
            "extra": {key: float(value) for key, value in sorted(self.extra.items())},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Technology":
        """Rebuild a node from :meth:`to_dict` output.

        Every parameter-range check in the dataclass constructors runs
        again on load, so an out-of-range bundle (negative mobility,
        supply below threshold, ...) fails here — at declaration time —
        rather than deep inside an evaluation.
        """
        if not isinstance(payload, Mapping):
            raise TechnologyError(
                f"technology bundle must be a mapping, got {type(payload).__name__}"
            )
        version = payload.get("version")
        if version != TECHNOLOGY_DICT_VERSION:
            raise TechnologyError(
                f"technology bundle has version {version!r}; this build reads "
                f"version {TECHNOLOGY_DICT_VERSION}"
            )
        allowed = {
            "version",
            "name",
            "feature_size_um",
            "vdd",
            "nmos",
            "pmos",
            "wire_cap_f_per_um",
            "min_width_um",
            "metal_layers",
            "extra",
        }
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise TechnologyError(
                f"unknown technology bundle field(s) {unknown}; "
                f"allowed: {sorted(allowed)}"
            )
        missing = sorted(allowed - {"extra"} - set(payload))
        if missing:
            raise TechnologyError(f"technology bundle is missing field(s) {missing}")
        name = payload["name"]
        if not isinstance(name, str) or not name:
            raise TechnologyError("technology bundle 'name' must be a non-empty string")
        metal_layers = payload["metal_layers"]
        if isinstance(metal_layers, bool) or not isinstance(metal_layers, int):
            raise TechnologyError("technology bundle 'metal_layers' must be an int")
        extra = payload.get("extra", {})
        if not isinstance(extra, Mapping):
            raise TechnologyError("technology bundle 'extra' must be a mapping")
        return cls(
            name=name,
            feature_size_um=_as_float("feature_size_um", payload["feature_size_um"]),
            vdd=_as_float("vdd", payload["vdd"]),
            nmos=TransistorParameters.from_dict(payload["nmos"]),
            pmos=TransistorParameters.from_dict(payload["pmos"]),
            wire_cap_f_per_um=_as_float(
                "wire_cap_f_per_um", payload["wire_cap_f_per_um"]
            ),
            min_width_um=_as_float("min_width_um", payload["min_width_um"]),
            metal_layers=metal_layers,
            extra={key: _as_float(f"extra[{key}]", value)
                   for key, value in extra.items()},
        )


def validate_operating_point(tech: Technology, temperature_c: float) -> None:
    """Raise :class:`TechnologyError` if a temperature is outside sane limits.

    The physical models remain well defined slightly outside the military
    range, but far outside it (e.g. below 0 K) the power-law mobility
    model diverges, so we guard against obviously wrong inputs.
    """
    temp_k = celsius_to_kelvin(temperature_c)
    if temp_k <= 50.0:
        raise TechnologyError(
            f"temperature {temperature_c} C ({temp_k:.1f} K) is below the "
            "validity range of the mobility model"
        )
    if temp_k >= 600.0:
        raise TechnologyError(
            f"temperature {temperature_c} C ({temp_k:.1f} K) is above the "
            "validity range of the device models"
        )
    if math.isnan(temp_k):
        raise TechnologyError("temperature must not be NaN")
