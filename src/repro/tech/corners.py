"""Process corners and Monte-Carlo variation of a technology.

Process variation shifts the absolute oscillation frequency of the ring
oscillator (which is why the smart sensor needs calibration) but, as the
paper argues, affects the *linearity* only weakly.  The corner and
Monte-Carlo machinery here feeds the calibration ablation benches.

Corners follow the usual five-corner convention:

======  =====================  =====================
corner  NMOS                   PMOS
======  =====================  =====================
TT      typical                typical
FF      fast (low Vth, hi mu)  fast
SS      slow (hi Vth, low mu)  slow
FS      fast                   slow
SF      slow                   fast
======  =====================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from .parameters import Technology, TechnologyError, TransistorParameters
from .stacked import TechnologyArray, TransistorParameterArray

__all__ = [
    "CornerSpec",
    "STANDARD_CORNERS",
    "apply_corner",
    "corner_technologies",
    "VariationModel",
    "sample_technologies",
    "sample_technology_array",
]


@dataclass(frozen=True)
class CornerSpec:
    """Relative parameter shifts defining one process corner.

    ``vth_shift_*`` are absolute voltage shifts (V); ``mobility_scale_*``
    are multiplicative factors.
    """

    name: str
    vth_shift_nmos: float
    vth_shift_pmos: float
    mobility_scale_nmos: float
    mobility_scale_pmos: float

    def describe(self) -> str:
        return (
            f"{self.name}: dVthN={self.vth_shift_nmos * 1e3:+.0f} mV, "
            f"dVthP={self.vth_shift_pmos * 1e3:+.0f} mV, "
            f"muN x{self.mobility_scale_nmos:.2f}, "
            f"muP x{self.mobility_scale_pmos:.2f}"
        )


STANDARD_CORNERS: Dict[str, CornerSpec] = {
    "TT": CornerSpec("TT", 0.0, 0.0, 1.0, 1.0),
    "FF": CornerSpec("FF", -0.05, -0.05, 1.08, 1.08),
    "SS": CornerSpec("SS", +0.05, +0.05, 0.92, 0.92),
    "FS": CornerSpec("FS", -0.05, +0.05, 1.08, 0.92),
    "SF": CornerSpec("SF", +0.05, -0.05, 0.92, 1.08),
}


def _shift_device(
    params: TransistorParameters, vth_shift: float, mobility_scale: float
) -> TransistorParameters:
    new_vth = params.vth0 + vth_shift
    if new_vth <= 0.0:
        raise TechnologyError(
            f"corner shift {vth_shift} V drives vth0 of {params.polarity} negative"
        )
    return params.scaled(vth0=new_vth, mobility=params.mobility * mobility_scale)


def apply_corner(tech: Technology, corner: CornerSpec) -> Technology:
    """Return a copy of ``tech`` shifted to the given corner.

    The corner name is appended to the technology name so that results
    keyed by technology remain unambiguous.
    """
    nmos = _shift_device(tech.nmos, corner.vth_shift_nmos, corner.mobility_scale_nmos)
    pmos = _shift_device(tech.pmos, corner.vth_shift_pmos, corner.mobility_scale_pmos)
    shifted = tech.with_transistors(nmos=nmos, pmos=pmos)
    return Technology(
        name=f"{tech.name}_{corner.name.lower()}",
        feature_size_um=shifted.feature_size_um,
        vdd=shifted.vdd,
        nmos=shifted.nmos,
        pmos=shifted.pmos,
        wire_cap_f_per_um=shifted.wire_cap_f_per_um,
        min_width_um=shifted.min_width_um,
        metal_layers=shifted.metal_layers,
        extra=dict(shifted.extra),
    )


def corner_technologies(
    tech: Technology, corners: Optional[Sequence[str]] = None
) -> Dict[str, Technology]:
    """Generate corner variants of a technology.

    Parameters
    ----------
    tech:
        The typical (TT) technology.
    corners:
        Corner names to generate; all five standard corners by default.
    """
    names = list(corners) if corners is not None else list(STANDARD_CORNERS)
    result: Dict[str, Technology] = {}
    for name in names:
        try:
            spec = STANDARD_CORNERS[name.upper()]
        except KeyError as exc:
            raise TechnologyError(f"unknown corner {name!r}") from exc
        result[spec.name] = apply_corner(tech, spec)
    return result


@dataclass(frozen=True)
class VariationModel:
    """Gaussian process-variation model for Monte-Carlo sampling.

    Sigmas are one-standard-deviation values; threshold variation is
    absolute (volts), mobility and oxide-capacitance variation are
    relative.
    """

    vth_sigma: float = 0.02
    mobility_sigma_rel: float = 0.03
    cox_sigma_rel: float = 0.02
    correlated_fraction: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.correlated_fraction <= 1.0:
            raise TechnologyError("correlated_fraction must lie in [0, 1]")
        if self.vth_sigma < 0 or self.mobility_sigma_rel < 0 or self.cox_sigma_rel < 0:
            raise TechnologyError("variation sigmas must be non-negative")


def sample_technologies(
    tech: Technology,
    count: int,
    model: Optional[VariationModel] = None,
    seed: Optional[int] = None,
) -> List[Technology]:
    """Draw Monte-Carlo samples of a technology.

    A fraction of the variation (``correlated_fraction``) is shared
    between NMOS and PMOS (die-to-die component), the remainder is
    independent per device type (within-die component).  This mirrors
    how real inter-/intra-die variation splits and matters for the
    calibration study: fully correlated variation is removed by a
    one-point calibration, uncorrelated variation is not.
    """
    if count <= 0:
        raise TechnologyError("count must be positive")
    model = model or VariationModel()
    rng = np.random.default_rng(seed)
    rho = model.correlated_fraction
    samples: List[Technology] = []
    for index in range(count):
        shared = rng.standard_normal(3)
        local_n = rng.standard_normal(3)
        local_p = rng.standard_normal(3)
        mix_n = np.sqrt(rho) * shared + np.sqrt(1.0 - rho) * local_n
        mix_p = np.sqrt(rho) * shared + np.sqrt(1.0 - rho) * local_p

        def _vary(params: TransistorParameters, mix: np.ndarray) -> TransistorParameters:
            vth = params.vth0 + model.vth_sigma * float(mix[0])
            mobility = params.mobility * (1.0 + model.mobility_sigma_rel * float(mix[1]))
            cox = params.cox_f_per_um2 * (1.0 + model.cox_sigma_rel * float(mix[2]))
            vth = max(vth, 0.05)
            mobility = max(mobility, 1.0)
            cox = max(cox, 1e-16)
            return params.scaled(vth0=vth, mobility=mobility, cox_f_per_um2=cox)

        varied = tech.with_transistors(
            nmos=_vary(tech.nmos, mix_n), pmos=_vary(tech.pmos, mix_p)
        )
        samples.append(
            Technology(
                name=f"{tech.name}_mc{index:04d}",
                feature_size_um=varied.feature_size_um,
                vdd=varied.vdd,
                nmos=varied.nmos,
                pmos=varied.pmos,
                wire_cap_f_per_um=varied.wire_cap_f_per_um,
                min_width_um=varied.min_width_um,
                metal_layers=varied.metal_layers,
                extra=dict(varied.extra),
            )
        )
    return samples


def sample_technology_array(
    tech: Technology,
    count: int,
    model: Optional[VariationModel] = None,
    seed: Optional[int] = None,
) -> TechnologyArray:
    """Draw Monte-Carlo samples of a technology in struct-of-arrays form.

    The stacked sibling of :func:`sample_technologies`: one
    :class:`~repro.tech.stacked.TechnologyArray` holding the whole
    population instead of a Python list of per-sample technologies.
    The random draws consume the generator stream in exactly the order
    the looped sampler does (per sample: 3 shared, 3 NMOS-local, 3
    PMOS-local normals) and the perturbation arithmetic is the same
    elementwise, so for a given seed the stacked population equals
    ``stack_technologies(sample_technologies(tech, count, ...))`` value
    for value.
    """
    if count <= 0:
        raise TechnologyError("count must be positive")
    model = model or VariationModel()
    rng = np.random.default_rng(seed)
    rho = model.correlated_fraction
    # Row i holds sample i's nine draws in the looped sampler's order:
    # shared[0:3], local_n[3:6], local_p[6:9].
    draws = rng.standard_normal((count, 9))
    shared = draws[:, 0:3]
    local_n = draws[:, 3:6]
    local_p = draws[:, 6:9]
    mix_n = np.sqrt(rho) * shared + np.sqrt(1.0 - rho) * local_n
    mix_p = np.sqrt(rho) * shared + np.sqrt(1.0 - rho) * local_p

    def _vary(params: TransistorParameters, mix: np.ndarray) -> TransistorParameterArray:
        vth = params.vth0 + model.vth_sigma * mix[:, 0]
        mobility = params.mobility * (1.0 + model.mobility_sigma_rel * mix[:, 1])
        cox = params.cox_f_per_um2 * (1.0 + model.cox_sigma_rel * mix[:, 2])
        return TransistorParameterArray(
            polarity=params.polarity,
            vth0=np.maximum(vth, 0.05),
            mobility=np.maximum(mobility, 1.0),
            cox_f_per_um2=np.maximum(cox, 1e-16),
            alpha=params.alpha,
            channel_length_um=params.channel_length_um,
            vsat_cm_per_s=params.vsat_cm_per_s,
            vth_temp_coeff=params.vth_temp_coeff,
            mobility_temp_exponent=params.mobility_temp_exponent,
            vsat_temp_coeff=params.vsat_temp_coeff,
            alpha_temp_coeff=params.alpha_temp_coeff,
            body_effect_gamma=params.body_effect_gamma,
            subthreshold_slope_mv_per_dec=params.subthreshold_slope_mv_per_dec,
            junction_cap_f_per_um=params.junction_cap_f_per_um,
            overlap_cap_f_per_um=params.overlap_cap_f_per_um,
        )

    return TechnologyArray(
        name=f"{tech.name}_mcx{count}",
        feature_size_um=tech.feature_size_um,
        vdd=np.full(count, tech.vdd),
        nmos=_vary(tech.nmos, mix_n),
        pmos=_vary(tech.pmos, mix_p),
        wire_cap_f_per_um=np.full(count, tech.wire_cap_f_per_um),
        min_width_um=tech.min_width_um,
        metal_layers=tech.metal_layers,
        extras=tuple(dict(tech.extra) for _ in range(count)),
    )


def iter_corner_and_samples(
    tech: Technology,
    monte_carlo_count: int = 0,
    seed: Optional[int] = None,
) -> Iterator[Technology]:
    """Yield the TT technology, all corners and optional MC samples."""
    yield tech
    for corner_tech in corner_technologies(tech).values():
        yield corner_tech
    if monte_carlo_count:
        for sample in sample_technologies(tech, monte_carlo_count, seed=seed):
            yield sample
