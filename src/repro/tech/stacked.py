"""Stacked (struct-of-arrays) technology parameters.

A Monte-Carlo population or a corner set is a *collection* of
technologies that differ only in a handful of scalar parameters
(threshold voltage, mobility, oxide capacitance, supply...).  Evaluating
such a population one :class:`~repro.tech.parameters.Technology` at a
time costs one full pass through the delay stack per sample — the
Python-loop bottleneck PR 1 left in
:meth:`~repro.oscillator.ring.RingOscillator.period_matrix`.

This module stores the population the other way around: one
:class:`TechnologyArray` whose parameter fields are ndarrays holding the
value of *every* sample at once.  The arrays are shaped ``(samples, 1)``
— column vectors — so that any arithmetic against a ``(temperatures,)``
grid broadcasts to a ``(samples, temperatures)`` matrix.  Because the
whole delay stack (:mod:`repro.tech.temperature`,
:mod:`repro.delay.alpha_power`, :mod:`repro.cells.cell`,
:meth:`~repro.oscillator.ring.RingOscillator.period_series`) is written
in elementwise NumPy operations, a :class:`TechnologyArray` can be
dropped in anywhere a :class:`~repro.tech.parameters.Technology` is
consumed analytically and the full ``(sample x temperature)`` result
falls out of one broadcast pass — no per-sample rebind, no Python loop.

The struct-of-arrays classes deliberately mirror the scalar dataclasses
field for field (same names, same units, same validation rules applied
elementwise), so the scalar objects remain the single source of truth
for semantics and the equivalence tests can compare the two layouts
sample by sample.

Not every consumer understands the stacked layout: the transistor-level
netlist builders (:meth:`repro.cells.cell.StandardCell.build_into`) and
anything else that needs one concrete operating point must unstack a
single sample first via :meth:`TechnologyArray.technology_at`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple, Union

import numpy as np

from .parameters import T_NOMINAL_K, Technology, TechnologyError, TransistorParameters

__all__ = [
    "TransistorParameterArray",
    "TechnologyArray",
    "stack_transistor_parameters",
    "stack_technologies",
    "technology_column_arrays",
    "technology_array_from_columns",
]

#: A stacked parameter field: scalar (uniform across samples) on input,
#: always a ``(samples, 1)`` float column after normalisation.
ParameterLike = Union[float, np.ndarray]

#: Per-device fields that are stacked into ``(samples, 1)`` columns.
_TRANSISTOR_FIELDS = (
    "vth0",
    "mobility",
    "alpha",
    "channel_length_um",
    "cox_f_per_um2",
    "vsat_cm_per_s",
    "vth_temp_coeff",
    "mobility_temp_exponent",
    "vsat_temp_coeff",
    "alpha_temp_coeff",
    "body_effect_gamma",
    "subthreshold_slope_mv_per_dec",
    "junction_cap_f_per_um",
    "overlap_cap_f_per_um",
)


def _as_column(value: ParameterLike, sample_count: int, field: str) -> np.ndarray:
    """Normalise one stacked field to a ``(sample_count, 1)`` float column."""
    column = np.asarray(value, dtype=float)
    if column.ndim == 0:
        column = np.full((sample_count, 1), float(column))
    elif column.ndim == 1:
        column = column.reshape(-1, 1)
    elif column.ndim == 2 and column.shape[1] == 1:
        pass
    else:
        raise TechnologyError(
            f"stacked field {field!r} must be a scalar, a 1-D array or an "
            f"(n, 1) column, got shape {column.shape}"
        )
    if column.shape[0] != sample_count:
        raise TechnologyError(
            f"stacked field {field!r} holds {column.shape[0]} samples, "
            f"expected {sample_count}"
        )
    if np.any(~np.isfinite(column)):
        raise TechnologyError(f"stacked field {field!r} contains non-finite values")
    return column


def _check_row_range(start: int, stop: int, count: int) -> Tuple[int, int]:
    """Validate a half-open population row range ``[start, stop)``."""
    start, stop = int(start), int(stop)
    if not 0 <= start < stop <= count:
        raise TechnologyError(
            f"row range [{start}, {stop}) outside the population (size {count})"
        )
    return start, stop


def _infer_sample_count(values) -> int:
    counts = {np.asarray(v).reshape(-1).size for v in values if np.asarray(v).ndim > 0}
    if len(counts) > 1:
        raise TechnologyError(
            f"stacked fields disagree on the sample count: {sorted(counts)}"
        )
    return counts.pop() if counts else 1


@dataclass(frozen=True)
class TransistorParameterArray:
    """Struct-of-arrays view of one MOSFET type across a sample population.

    Field names, units and sign conventions are identical to
    :class:`~repro.tech.parameters.TransistorParameters`; every numeric
    field holds a ``(samples, 1)`` float column (scalars passed to the
    constructor are broadcast to the population).  The validation rules
    of the scalar dataclass are applied elementwise, so an array that
    would be rejected sample by sample is rejected here too.

    The class duck-types the scalar parameter block everywhere the
    *analytical* stack touches it (:func:`repro.tech.temperature.device_at`,
    :func:`repro.delay.alpha_power.effective_saturation_current`,
    :func:`repro.delay.load.input_capacitance`...), which is what lets a
    whole population flow through the delay models in one broadcast.
    """

    polarity: str
    vth0: ParameterLike
    mobility: ParameterLike
    alpha: ParameterLike
    channel_length_um: ParameterLike
    cox_f_per_um2: ParameterLike
    vsat_cm_per_s: ParameterLike
    vth_temp_coeff: ParameterLike
    mobility_temp_exponent: ParameterLike
    vsat_temp_coeff: ParameterLike = 1.0e-4
    alpha_temp_coeff: ParameterLike = 0.0
    body_effect_gamma: ParameterLike = 0.4
    subthreshold_slope_mv_per_dec: ParameterLike = 85.0
    junction_cap_f_per_um: ParameterLike = 1.0e-15
    overlap_cap_f_per_um: ParameterLike = 0.35e-15

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise TechnologyError(
                f"polarity must be 'nmos' or 'pmos', got {self.polarity!r}"
            )
        count = _infer_sample_count(
            getattr(self, field) for field in _TRANSISTOR_FIELDS
        )
        for field in _TRANSISTOR_FIELDS:
            object.__setattr__(
                self, field, _as_column(getattr(self, field), count, field)
            )
        if np.any(self.vth0 <= 0.0):
            raise TechnologyError("vth0 must be a positive magnitude in every sample")
        if np.any(self.mobility <= 0.0):
            raise TechnologyError("mobility must be positive in every sample")
        if np.any(self.alpha < 1.0) or np.any(self.alpha > 2.0):
            raise TechnologyError(
                "alpha must lie in [1, 2] (velocity saturated .. square law) "
                "in every sample"
            )
        if np.any(self.channel_length_um <= 0.0):
            raise TechnologyError("channel_length_um must be positive in every sample")
        if np.any(self.cox_f_per_um2 <= 0.0):
            raise TechnologyError("cox_f_per_um2 must be positive in every sample")
        if np.any(self.vsat_cm_per_s <= 0.0):
            raise TechnologyError("vsat_cm_per_s must be positive in every sample")
        if np.any(self.mobility_temp_exponent < 0.0):
            raise TechnologyError("mobility_temp_exponent must be >= 0 in every sample")
        if np.any(self.vth_temp_coeff < 0.0):
            raise TechnologyError(
                "vth_temp_coeff is the magnitude of dVth/dT and must be >= 0 "
                "in every sample"
            )

    @property
    def sample_count(self) -> int:
        return int(np.asarray(self.vth0).shape[0])

    @property
    def gate_cap_f_per_um(self) -> np.ndarray:
        """Gate capacitance per micron of width (F / um), per sample."""
        return (
            self.cox_f_per_um2 * self.channel_length_um
            + 2.0 * self.overlap_cap_f_per_um
        )

    @property
    def process_transconductance(self) -> np.ndarray:
        """``k' = mu * Cox`` in A / V^2 for a square device, per sample."""
        mobility_um2 = self.mobility * 1.0e8  # cm^2 -> um^2
        return mobility_um2 * self.cox_f_per_um2

    def tiled(self, repeats: int) -> "TransistorParameterArray":
        """The population repeated ``repeats`` times along the sample axis.

        Used to build cross products against other stacked axes (e.g.
        supply x sample in the sweep planner): the result's flat sample
        order is repeat-major (``r * len(self) + s``).
        """
        if repeats < 1:
            raise TechnologyError("repeats must be at least 1")
        columns = {
            field: np.tile(np.asarray(getattr(self, field), dtype=float), (repeats, 1))
            for field in _TRANSISTOR_FIELDS
        }
        return TransistorParameterArray(polarity=self.polarity, **columns)

    def sliced(self, start: int, stop: int) -> "TransistorParameterArray":
        """Rows ``[start, stop)`` of the population (a tiling sub-range).

        Used by the sweep engine's tiling pass: slicing the stacked
        columns is elementwise, so a sliced population evaluates
        bit-identically to the corresponding rows of the full one.
        """
        start, stop = _check_row_range(start, stop, self.sample_count)
        columns = {
            field: np.asarray(getattr(self, field), dtype=float)[start:stop]
            for field in _TRANSISTOR_FIELDS
        }
        return TransistorParameterArray(polarity=self.polarity, **columns)

    def parameters_at(self, index: int) -> TransistorParameters:
        """Unstack one sample into a scalar parameter block."""
        if not 0 <= index < self.sample_count:
            raise TechnologyError(
                f"sample index {index} outside the population "
                f"(0..{self.sample_count - 1})"
            )
        kwargs = {
            field: float(np.asarray(getattr(self, field))[index, 0])
            for field in _TRANSISTOR_FIELDS
        }
        return TransistorParameters(polarity=self.polarity, **kwargs)


def stack_transistor_parameters(
    parameters: Sequence[TransistorParameters],
) -> TransistorParameterArray:
    """Stack per-sample scalar parameter blocks into one struct of arrays."""
    if not parameters:
        raise TechnologyError("cannot stack an empty parameter sequence")
    polarities = {p.polarity for p in parameters}
    if len(polarities) > 1:
        raise TechnologyError(
            f"cannot stack mixed polarities {sorted(polarities)}"
        )
    columns = {
        field: np.asarray([getattr(p, field) for p in parameters], dtype=float)
        for field in _TRANSISTOR_FIELDS
    }
    return TransistorParameterArray(polarity=parameters[0].polarity, **columns)


@dataclass(frozen=True)
class TechnologyArray:
    """A whole population of CMOS technologies in struct-of-arrays form.

    Mirrors :class:`~repro.tech.parameters.Technology`: ``vdd`` and
    ``wire_cap_f_per_um`` are stacked ``(samples, 1)`` columns (they may
    legitimately differ per sample — e.g. stacked supply sweeps), while
    ``feature_size_um``, ``min_width_um`` and ``metal_layers`` must be
    uniform because they feed scalar geometry decisions (cell widths,
    layout pitch) that define the *design*, not the sample.

    Duck-types ``Technology`` for the analytical delay stack: passing a
    ``TechnologyArray`` to :class:`~repro.cells.cell.StandardCell` /
    :meth:`~repro.oscillator.ring.RingOscillator.rebind` makes every
    delay, load and period evaluation broadcast over the leading sample
    axis, so ``period_series`` on a stacked ring returns a
    ``(samples, temperatures)`` matrix in one pass.
    """

    name: str
    feature_size_um: float
    vdd: ParameterLike
    nmos: TransistorParameterArray
    pmos: TransistorParameterArray
    wire_cap_f_per_um: ParameterLike = 0.2e-15
    min_width_um: float = 0.5
    metal_layers: int = 4
    #: Per-sample ``Technology.extra`` metadata dictionaries (e.g. the
    #: thermal_design_range_c overrides), preserved verbatim through the
    #: stack/unstack round trip; empty dicts when none were given.
    extras: Tuple[Dict[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.feature_size_um <= 0.0:
            raise TechnologyError("feature_size_um must be positive")
        if self.nmos.polarity != "nmos":
            raise TechnologyError("nmos parameters must have polarity 'nmos'")
        if self.pmos.polarity != "pmos":
            raise TechnologyError("pmos parameters must have polarity 'pmos'")
        if self.nmos.sample_count != self.pmos.sample_count:
            raise TechnologyError(
                f"nmos ({self.nmos.sample_count}) and pmos "
                f"({self.pmos.sample_count}) populations differ in size"
            )
        count = self.nmos.sample_count
        object.__setattr__(self, "vdd", _as_column(self.vdd, count, "vdd"))
        object.__setattr__(
            self,
            "wire_cap_f_per_um",
            _as_column(self.wire_cap_f_per_um, count, "wire_cap_f_per_um"),
        )
        if np.any(self.vdd <= 0.0):
            raise TechnologyError("vdd must be positive in every sample")
        if np.any(self.vdd <= np.maximum(self.nmos.vth0, self.pmos.vth0)):
            raise TechnologyError(
                "vdd must exceed both threshold voltages for the gates to "
                "switch in every sample"
            )
        if not self.extras:
            object.__setattr__(self, "extras", tuple({} for _ in range(count)))
        elif len(self.extras) != count:
            raise TechnologyError(
                f"extras holds {len(self.extras)} entries, expected {count}"
            )

    # ------------------------------------------------------------------ #
    # population structure
    # ------------------------------------------------------------------ #

    @property
    def sample_count(self) -> int:
        return self.nmos.sample_count

    def __len__(self) -> int:
        return self.sample_count

    def technology_at(self, index: int) -> Technology:
        """Unstack one sample into a scalar :class:`Technology`."""
        if not 0 <= index < self.sample_count:
            raise TechnologyError(
                f"sample index {index} outside the population "
                f"(0..{self.sample_count - 1})"
            )
        return Technology(
            name=f"{self.name}[{index}]",
            feature_size_um=self.feature_size_um,
            vdd=float(np.asarray(self.vdd)[index, 0]),
            nmos=self.nmos.parameters_at(index),
            pmos=self.pmos.parameters_at(index),
            wire_cap_f_per_um=float(np.asarray(self.wire_cap_f_per_um)[index, 0]),
            min_width_um=self.min_width_um,
            metal_layers=self.metal_layers,
            extra=dict(self.extras[index]),
        )

    def technologies(self) -> list:
        """Unstack the whole population (one scalar Technology per sample)."""
        return [self.technology_at(index) for index in range(self.sample_count)]

    # ------------------------------------------------------------------ #
    # Technology duck-typed surface
    # ------------------------------------------------------------------ #

    def transistor(self, polarity: str) -> TransistorParameterArray:
        """Return the stacked parameter block for ``"nmos"`` or ``"pmos"``."""
        if polarity == "nmos":
            return self.nmos
        if polarity == "pmos":
            return self.pmos
        raise TechnologyError(f"unknown polarity {polarity!r}")

    @property
    def nominal_temperature_k(self) -> float:
        """Reference temperature at which the parameters are quoted."""
        return T_NOMINAL_K

    def with_supply(self, vdd: ParameterLike) -> "TechnologyArray":
        """A copy operated at different supplies (scalar or per-sample)."""
        return dataclasses.replace(self, vdd=vdd)

    def tiled(self, repeats: int) -> "TechnologyArray":
        """The whole population repeated ``repeats`` times (repeat-major).

        The building block for stacked cross products: the sweep
        planner's supply x sample lowering is
        ``population.tiled(V).with_supply(np.repeat(supplies, S))``, so
        flat sample ``v * S + s`` carries supply ``v`` over sample ``s``
        and the result reshapes cleanly to ``(V, S)``.
        """
        if repeats < 1:
            raise TechnologyError("repeats must be at least 1")
        return TechnologyArray(
            name=f"{self.name}_x{repeats}",
            feature_size_um=self.feature_size_um,
            vdd=np.tile(np.asarray(self.vdd, dtype=float), (repeats, 1)),
            nmos=self.nmos.tiled(repeats),
            pmos=self.pmos.tiled(repeats),
            wire_cap_f_per_um=np.tile(
                np.asarray(self.wire_cap_f_per_um, dtype=float), (repeats, 1)
            ),
            min_width_um=self.min_width_um,
            metal_layers=self.metal_layers,
            extras=tuple(dict(extra) for _ in range(repeats) for extra in self.extras),
        )

    def sliced(self, start: int, stop: int) -> "TechnologyArray":
        """Rows ``[start, stop)`` of the population (a tiling sub-range).

        The sweep engine's tiling pass partitions the sample axis with
        this: every stacked column is sliced elementwise, so evaluating
        the sub-population reproduces the corresponding rows of the full
        broadcast bit for bit.
        """
        start, stop = _check_row_range(start, stop, self.sample_count)
        return TechnologyArray(
            name=f"{self.name}[{start}:{stop}]",
            feature_size_um=self.feature_size_um,
            vdd=np.asarray(self.vdd, dtype=float)[start:stop],
            nmos=self.nmos.sliced(start, stop),
            pmos=self.pmos.sliced(start, stop),
            wire_cap_f_per_um=np.asarray(self.wire_cap_f_per_um, dtype=float)[
                start:stop
            ],
            min_width_um=self.min_width_um,
            metal_layers=self.metal_layers,
            extras=tuple(dict(extra) for extra in self.extras[start:stop]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TechnologyArray({self.name!r}, samples={self.sample_count})"


def technology_column_arrays(array: TechnologyArray) -> Dict[str, np.ndarray]:
    """The stacked ``(samples, 1)`` float columns of a population, flat.

    Keys are ``"vdd"``, ``"wire_cap_f_per_um"`` and the dotted
    per-device fields (``"nmos.vth0"``, ``"pmos.mobility"``, ...).  This
    is the transport surface of the population — the sweep engine's
    multiprocess executor packs exactly these arrays into one shared
    memory block and rebuilds the population zero-copy in each worker
    via :func:`technology_array_from_columns`.
    """
    columns: Dict[str, np.ndarray] = {
        "vdd": np.asarray(array.vdd, dtype=float),
        "wire_cap_f_per_um": np.asarray(array.wire_cap_f_per_um, dtype=float),
    }
    for polarity in ("nmos", "pmos"):
        block = getattr(array, polarity)
        for field in _TRANSISTOR_FIELDS:
            columns[f"{polarity}.{field}"] = np.asarray(
                getattr(block, field), dtype=float
            )
    return columns


def technology_array_from_columns(
    name: str,
    feature_size_um: float,
    min_width_um: float,
    metal_layers: int,
    extras: Tuple[Dict[str, float], ...],
    columns: Dict[str, np.ndarray],
) -> TechnologyArray:
    """Rebuild a :class:`TechnologyArray` from its transported columns.

    Inverse of :func:`technology_column_arrays`; the column arrays are
    adopted as-is (already ``(samples, 1)`` float64), so arrays backed
    by a shared-memory buffer stay zero-copy views of it.
    """
    def block(polarity: str) -> TransistorParameterArray:
        return TransistorParameterArray(
            polarity=polarity,
            **{field: columns[f"{polarity}.{field}"] for field in _TRANSISTOR_FIELDS},
        )

    return TechnologyArray(
        name=name,
        feature_size_um=feature_size_um,
        vdd=columns["vdd"],
        nmos=block("nmos"),
        pmos=block("pmos"),
        wire_cap_f_per_um=columns["wire_cap_f_per_um"],
        min_width_um=min_width_um,
        metal_layers=metal_layers,
        extras=extras,
    )


def stack_technologies(technologies: Sequence[Technology]) -> TechnologyArray:
    """Stack per-sample scalar technologies into one :class:`TechnologyArray`.

    Every sample must share the geometry-defining scalars
    (``feature_size_um``, ``min_width_um``, ``metal_layers``); the
    electrical parameters, the supply and the wire capacitance are
    stacked into ``(samples, 1)`` columns.  The result evaluates
    identically (elementwise) to looping over the input technologies,
    which the stacked-equivalence tests pin down.
    """
    techs = list(technologies)
    if not techs:
        raise TechnologyError("cannot stack an empty technology sequence")
    if isinstance(techs[0], TechnologyArray):
        raise TechnologyError("technologies are already stacked")
    feature_sizes = {t.feature_size_um for t in techs}
    min_widths = {t.min_width_um for t in techs}
    metal_layers = {t.metal_layers for t in techs}
    if len(feature_sizes) > 1 or len(min_widths) > 1 or len(metal_layers) > 1:
        raise TechnologyError(
            "stacked technologies must share feature_size_um, min_width_um "
            "and metal_layers (these define the design, not the sample)"
        )
    base = techs[0]
    return TechnologyArray(
        name=f"{base.name}_stack{len(techs)}",
        feature_size_um=base.feature_size_um,
        vdd=np.asarray([t.vdd for t in techs], dtype=float),
        nmos=stack_transistor_parameters([t.nmos for t in techs]),
        pmos=stack_transistor_parameters([t.pmos for t in techs]),
        wire_cap_f_per_um=np.asarray(
            [t.wire_cap_f_per_um for t in techs], dtype=float
        ),
        min_width_um=base.min_width_um,
        metal_layers=base.metal_layers,
        extras=tuple(dict(t.extra) for t in techs),
    )
