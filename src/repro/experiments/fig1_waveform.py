"""Experiment FIG1: transient waveform of the 5-stage inverter ring.

Reproduces the paper's Fig. 1 — the simulated output of a five-stage
inverter ring oscillator over the first ~1.5 ns — using the
transistor-level MNA simulator.  The quantitative check is not the
absolute period (our synthetic 0.35 um technology differs from the
authors' foundry library) but the qualitative content of the figure:
the ring oscillates rail to rail with a period of a few hundred
picoseconds, and the period extracted from the waveform tracks the
analytical model used by every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cells.library import default_library
from ..circuit.waveform import Waveform
from ..oscillator.config import RingConfiguration
from ..oscillator.ring import RingOscillator
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology

__all__ = ["Fig1Result", "run_fig1"]


@dataclass(frozen=True)
class Fig1Result:
    """Outcome of the Fig. 1 reproduction."""

    technology_name: str
    temperature_c: float
    stage_count: int
    waveform: Waveform
    analytical_period_s: float
    simulated_period_s: float
    oscillates: bool

    @property
    def period_mismatch_rel(self) -> float:
        """Relative difference between simulated and analytical period."""
        return abs(self.simulated_period_s - self.analytical_period_s) / self.analytical_period_s

    def format_summary(self) -> str:
        """Human-readable summary block for reports."""
        lines = [
            "FIG1 - 5-stage inverter ring, transient waveform",
            f"  technology          : {self.technology_name}",
            f"  temperature         : {self.temperature_c:.1f} C",
            f"  simulated span      : {self.waveform.duration * 1e12:.0f} ps",
            f"  analytical period   : {self.analytical_period_s * 1e12:.1f} ps",
            f"  simulated period    : {self.simulated_period_s * 1e12:.1f} ps",
            f"  model mismatch      : {self.period_mismatch_rel * 100:.1f} %",
            f"  rail-to-rail swing  : {self.oscillates}",
        ]
        return "\n".join(lines)


def run_fig1(
    technology: Optional[Technology] = None,
    temperature_c: float = 27.0,
    stage_count: int = 5,
    cycles: float = 5.0,
    points_per_period: int = 250,
) -> Fig1Result:
    """Run the Fig. 1 experiment.

    Parameters
    ----------
    technology:
        CMOS technology (the paper's 0.35 um node by default).
    temperature_c:
        Junction temperature of the simulation.
    stage_count:
        Number of inverter stages (5 in the paper).
    cycles:
        Simulated duration in analytical periods; 5 periods of the
        default ring covers roughly the 1.5 ns span of the paper's plot.
    points_per_period:
        Transient timestep resolution.
    """
    tech = technology if technology is not None else CMOS035
    library = default_library(tech)
    ring = RingOscillator(library, RingConfiguration.uniform("INV", stage_count))
    analytical = ring.period(temperature_c)
    # The simulated period is longer than the analytical estimate (finite
    # input slews, numerical damping), so pad the simulated span to make
    # sure enough full cycles are captured for the period extraction.
    waveform = ring.simulate(
        temperature_c, cycles=cycles * 1.6, points_per_period=points_per_period
    )
    simulated = waveform.period(threshold=0.5 * tech.vdd, skip_cycles=1)
    return Fig1Result(
        technology_name=tech.name,
        temperature_c=temperature_c,
        stage_count=stage_count,
        waveform=waveform,
        analytical_period_s=analytical,
        simulated_period_s=simulated,
        oscillates=waveform.is_oscillating(supply=tech.vdd),
    )
