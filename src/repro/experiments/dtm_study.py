"""Experiment EXT-DTM: closed-loop thermal management driven by the sensor.

The final justification for a built-in temperature sensor is the system
it enables: dynamic thermal management.  This extension runs the
closed-loop simulation (workload power -> die temperature -> multiplexed
sensor readings -> throttling policy -> workload power ...) and compares
it against the same die with no thermal management, answering the two
questions a product team would ask: does the sensor-driven policy keep
the junction below the limit, and how much performance does it cost?

The paper's DTM story is really a *comparison* — many candidate
policies against one die — so the experiment is declared as a policy
sweep: :func:`run_dtm_policy_sweep` stacks the candidate policies (plus
an always-included unmanaged baseline) into a
:class:`~repro.core.thermal_manager.PolicyBank` and advances all of
them through one shared closed loop
(:meth:`~repro.core.thermal_manager.DynamicThermalManager.run_bank` —
one multi-RHS backward-Euler solve and one banked sensor scan per
timestep, bit-matching the scalar per-policy oracle), optionally
crossed with a Monte-Carlo technology population (the ``sample`` axis)
and with a set of thermal-grid resolutions (the grid-refinement axis
mirroring the sweep engine's ``resolution`` axis — one cached
factorization per grid).  The two-policy :func:`run_dtm_study` is the
same machinery specialised to the managed-versus-unmanaged pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.readout import ReadoutConfig
from ..core.thermal_manager import (
    DtmBankResult,
    DtmResult,
    DynamicThermalManager,
    PolicyBank,
    ThrottlingPolicy,
)
from ..engine.sweep import SweepResult
from ..oscillator.config import RingConfiguration
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology, TechnologyError
from ..thermal.floorplan import Floorplan

__all__ = [
    "DtmStudyResult",
    "DtmPolicySweepResult",
    "DTM_SWEEP_OBSERVABLES",
    "example_policy_set",
    "never_throttle_policy",
    "run_dtm_study",
    "run_dtm_policy_sweep",
]

#: The per-policy observables :meth:`DtmPolicySweepResult.observable`
#: can evaluate, each reducing the banked traces to one value per
#: (policy, resolution[, sample]) coordinate.
DTM_SWEEP_OBSERVABLES = (
    "peak_temperature_c",
    "peak_reduction_c",
    "throttle_events",
    "average_performance",
    "time_above_limit_s",
)

#: Label of the automatically appended unmanaged reference policy.
UNMANAGED_LABEL = "unmanaged"


def never_throttle_policy() -> ThrottlingPolicy:
    """The unmanaged reference: thresholds no die can reach.

    The *same* sensors and thermal model run under it — they observe
    but never throttle — so managed-versus-unmanaged differences come
    from the policy alone.
    """
    return ThrottlingPolicy(
        throttle_threshold_c=10_000.0,
        release_threshold_c=9_000.0,
        emergency_threshold_c=11_000.0,
    )


def example_policy_set(limit_c: float = 115.0) -> Dict[str, ThrottlingPolicy]:
    """The example-processor policy candidates, spread around a limit.

    ``eager`` throttles well below the limit (cool die, large
    performance cost), ``default`` is :func:`run_dtm_study`'s policy,
    ``late`` tolerates readings right up to the limit, and
    ``two-state`` drops straight from full speed to the emergency
    state (0.25x power) with no intermediate throttled state — the
    four corners a DTM comparison wants on one axis.
    """
    return {
        "eager": ThrottlingPolicy(
            throttle_threshold_c=limit_c - 20.0,
            release_threshold_c=limit_c - 35.0,
            emergency_threshold_c=limit_c - 5.0,
        ),
        "default": ThrottlingPolicy(
            throttle_threshold_c=limit_c - 10.0,
            release_threshold_c=limit_c - 25.0,
            emergency_threshold_c=limit_c + 5.0,
        ),
        "late": ThrottlingPolicy(
            throttle_threshold_c=limit_c - 2.0,
            release_threshold_c=limit_c - 14.0,
            emergency_threshold_c=limit_c + 8.0,
        ),
        "two-state": ThrottlingPolicy(
            throttle_threshold_c=limit_c - 10.0,
            release_threshold_c=limit_c - 25.0,
            emergency_threshold_c=limit_c + 5.0,
            states=(
                ThrottlingPolicy().states[0],
                ThrottlingPolicy().states[2],
            ),
        ),
    }


@dataclass(frozen=True)
class DtmStudyResult:
    """Outcome of the closed-loop thermal-management experiment."""

    technology_name: str
    configuration_label: str
    limit_c: float
    unmanaged: DtmResult
    managed: DtmResult

    def peak_reduction_c(self) -> float:
        """How much the policy lowers the peak junction temperature."""
        return self.unmanaged.peak_temperature_c() - self.managed.peak_temperature_c()

    def keeps_die_below_limit(self, tolerance_c: float = 2.0) -> bool:
        """Whether the managed die stays (almost) below the limit."""
        return self.managed.peak_temperature_c() <= self.limit_c + tolerance_c

    def performance_cost(self) -> float:
        """Fraction of performance given up by throttling (0 = none)."""
        return 1.0 - self.managed.average_performance()

    def format_summary(self) -> str:
        lines = [
            "EXT-DTM - sensor-driven dynamic thermal management",
            f"  ring configuration       : {self.configuration_label}",
            f"  junction limit            : {self.limit_c:.0f} C",
            f"  unmanaged peak            : {self.unmanaged.peak_temperature_c():.1f} C "
            f"({self.unmanaged.time_above_limit_s() * 1e3:.0f} ms above the limit)",
            f"  managed peak              : {self.managed.peak_temperature_c():.1f} C "
            f"({self.managed.time_above_limit_s() * 1e3:.0f} ms above the limit)",
            f"  peak reduction            : {self.peak_reduction_c():.1f} C",
            f"  throttle events           : {self.managed.throttle_events()}",
            f"  average performance       : {self.managed.average_performance() * 100:.1f} % "
            f"(cost {self.performance_cost() * 100:.1f} %)",
            f"  state occupancy           : "
            + ", ".join(
                f"{name} {fraction * 100:.0f}%"
                for name, fraction in self.managed.state_occupancy().items()
            ),
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class DtmPolicySweepResult:
    """Outcome of the banked DTM policy sweep.

    ``bank_results`` holds one :class:`DtmBankResult` per thermal-grid
    resolution (every result's policy axis includes the appended
    ``unmanaged`` baseline as its last row); :meth:`observable` reduces
    them to labeled :class:`~repro.engine.sweep.SweepResult` tensors on
    a ``policy x resolution`` (``x sample``) grid, so the DTM numbers
    select by meaning exactly like every other sweep in the repo.
    """

    technology_name: str
    configuration_label: str
    limit_c: float
    policy_labels: Tuple[str, ...]
    grid_resolutions: Tuple[int, ...]
    bank_results: Tuple[DtmBankResult, ...]

    @property
    def sample_count(self) -> Optional[int]:
        return self.bank_results[0].sample_count

    def bank_result(self, grid_resolution: Optional[int] = None) -> DtmBankResult:
        """The banked traces of one resolution (the only one by default)."""
        if grid_resolution is None:
            if len(self.grid_resolutions) != 1:
                raise TechnologyError(
                    f"this sweep ran {len(self.grid_resolutions)} grid "
                    f"resolutions {self.grid_resolutions}; name one"
                )
            return self.bank_results[0]
        try:
            index = self.grid_resolutions.index(int(grid_resolution))
        except ValueError:
            raise TechnologyError(
                f"no grid resolution {grid_resolution!r}; resolutions are "
                f"{self.grid_resolutions}"
            ) from None
        return self.bank_results[index]

    def observable(self, name: str) -> SweepResult:
        """One per-policy metric as a labeled sweep tensor.

        ``name`` is one of :data:`DTM_SWEEP_OBSERVABLES`; the result
        has dims ``(policy, resolution)`` — plus ``sample`` when the
        sweep scanned a technology population.  ``peak_reduction_c`` is
        each policy's peak improvement over the unmanaged baseline of
        the *same* resolution (and sample).
        """
        if name not in DTM_SWEEP_OBSERVABLES:
            raise TechnologyError(
                f"unknown DTM observable {name!r}; choose one of "
                f"{DTM_SWEEP_OBSERVABLES}"
            )
        per_resolution = []
        for result in self.bank_results:
            if name == "peak_reduction_c":
                peaks = result.peak_temperature_c()
                values = peaks[-1, ...] - peaks
            else:
                values = getattr(result, name)()
            per_resolution.append(values)
        # (policy[, sample]) slices stack resolution-major; move the
        # resolution axis behind the policy axis for the canonical
        # policy/resolution/sample order.
        tensor = np.moveaxis(np.stack(per_resolution), 0, 1)
        dims = ["policy", "resolution"]
        coords: Dict[str, Tuple] = {
            "policy": self.policy_labels + (UNMANAGED_LABEL,),
            "resolution": self.grid_resolutions,
        }
        if self.sample_count is not None:
            dims.append("sample")
            coords["sample"] = tuple(range(self.sample_count))
        return SweepResult(
            values=tensor, dims=tuple(dims), coords=coords, observable=name
        )

    def state_occupancy(
        self, grid_resolution: Optional[int] = None
    ) -> Dict[str, Dict[str, float]]:
        """Per-policy state-occupancy fractions at one resolution."""
        return self.bank_result(grid_resolution).state_occupancy()

    def format_table(self) -> str:
        sample_note = (
            "" if self.sample_count is None else f", {self.sample_count} samples"
        )
        lines = [
            "EXT-DTMSWEEP - banked throttling-policy comparison "
            f"(limit {self.limit_c:.0f} C{sample_note})",
            f"ring: {self.configuration_label}, technology: {self.technology_name}",
            f"{'policy':>12s} {'grid':>6s} {'peak':>8s} {'reduction':>10s} "
            f"{'events':>7s} {'perf':>7s} {'>limit':>8s}",
        ]
        peak = self.observable("peak_temperature_c")
        reduction = self.observable("peak_reduction_c")
        events = self.observable("throttle_events")
        performance = self.observable("average_performance")
        above = self.observable("time_above_limit_s")

        def cell(result: SweepResult, label: str, resolution: int) -> float:
            values = result.select(policy=label, resolution=resolution).values
            return float(np.mean(values))

        for label in self.policy_labels + (UNMANAGED_LABEL,):
            for resolution in self.grid_resolutions:
                lines.append(
                    f"{label:>12s} {resolution:>4d}^2 "
                    f"{cell(peak, label, resolution):>6.1f} C "
                    f"{cell(reduction, label, resolution):>8.1f} C "
                    f"{cell(events, label, resolution):>7.1f} "
                    f"{cell(performance, label, resolution) * 100:>5.1f} % "
                    f"{cell(above, label, resolution) * 1e3:>5.0f} ms"
                )
        return "\n".join(lines)


def _build_manager(
    technology: Technology,
    configuration: RingConfiguration,
    limit_c: float,
    sensor_grid: int,
    grid_resolution: int,
) -> DynamicThermalManager:
    floorplan = Floorplan.example_processor()
    floorplan.add_sensor_grid(sensor_grid, sensor_grid)
    policy = ThrottlingPolicy(
        throttle_threshold_c=limit_c - 10.0,
        release_threshold_c=limit_c - 25.0,
        emergency_threshold_c=limit_c + 5.0,
    )
    return DynamicThermalManager(
        technology,
        floorplan,
        configuration,
        policy=policy,
        readout=ReadoutConfig(),
        grid_resolution=grid_resolution,
    )


def run_dtm_policy_sweep(
    technology: Optional[Technology] = None,
    policies: Optional[
        Union[PolicyBank, Mapping[str, ThrottlingPolicy], Sequence[ThrottlingPolicy]]
    ] = None,
    configuration_text: str = "2INV+3NAND2",
    workload_scale: float = 1.6,
    duration_s: float = 2.0,
    control_interval_s: float = 0.02,
    limit_c: float = 115.0,
    sensor_grid: int = 3,
    grid_resolutions: Union[int, Sequence[int]] = 20,
    technologies=None,
) -> DtmPolicySweepResult:
    """Run the declarative DTM policy sweep (policy x resolution x sample).

    Every candidate policy — plus the always-appended ``unmanaged``
    baseline that :meth:`DtmPolicySweepResult.observable` computes
    ``peak_reduction_c`` against — advances through one shared banked
    closed loop per grid resolution.  ``technologies`` adds a
    Monte-Carlo ``sample`` axis: each sample's sensors read the die
    through their own process corner and per-sample calibration.
    """
    tech = technology if technology is not None else CMOS035
    configuration = RingConfiguration.parse(configuration_text)
    candidate_bank = PolicyBank.of(
        policies if policies is not None else example_policy_set(limit_c)
    )
    if UNMANAGED_LABEL in candidate_bank.labels():
        raise TechnologyError(
            f"the label {UNMANAGED_LABEL!r} is reserved for the appended "
            "baseline policy"
        )
    stacked = PolicyBank(
        {
            **dict(zip(candidate_bank.labels(), candidate_bank.policies())),
            UNMANAGED_LABEL: never_throttle_policy(),
        }
    )
    if isinstance(grid_resolutions, (int, np.integer)):
        grid_resolutions = (int(grid_resolutions),)
    resolutions = tuple(int(r) for r in grid_resolutions)
    if not resolutions:
        raise TechnologyError("the sweep needs at least one grid resolution")

    results = []
    for resolution in resolutions:
        manager = _build_manager(tech, configuration, limit_c, sensor_grid, resolution)
        results.append(
            manager.run_bank(
                stacked,
                duration_s=duration_s,
                control_interval_s=control_interval_s,
                limit_c=limit_c,
                workload_scale=workload_scale,
                technologies=technologies,
            )
        )
    return DtmPolicySweepResult(
        technology_name=tech.name,
        configuration_label=configuration.label(),
        limit_c=limit_c,
        policy_labels=candidate_bank.labels(),
        grid_resolutions=resolutions,
        bank_results=tuple(results),
    )


def run_dtm_study(
    technology: Optional[Technology] = None,
    configuration_text: str = "2INV+3NAND2",
    workload_scale: float = 1.6,
    duration_s: float = 2.0,
    control_interval_s: float = 0.02,
    limit_c: float = 115.0,
    sensor_grid: int = 3,
    grid_resolution: int = 20,
) -> DtmStudyResult:
    """Run the DTM experiment: unmanaged versus sensor-managed die.

    ``workload_scale`` > 1 represents a power virus / worst-case workload
    that would push the unmanaged die past the junction limit — the case
    thermal management exists for.  The managed/unmanaged pair is the
    two-policy special case of :func:`run_dtm_policy_sweep`: both ride
    one banked closed loop (one multi-RHS solve per timestep), and the
    banked arithmetic bit-matches the retained scalar
    :meth:`~repro.core.thermal_manager.DynamicThermalManager.run`
    oracle policy for policy.
    """
    tech = technology if technology is not None else CMOS035
    configuration = RingConfiguration.parse(configuration_text)
    manager = _build_manager(
        tech, configuration, limit_c, sensor_grid, grid_resolution
    )
    banked = manager.run_bank(
        {"managed": manager.policy, UNMANAGED_LABEL: never_throttle_policy()},
        duration_s=duration_s,
        control_interval_s=control_interval_s,
        limit_c=limit_c,
        workload_scale=workload_scale,
    )
    return DtmStudyResult(
        technology_name=tech.name,
        configuration_label=configuration.label(),
        limit_c=limit_c,
        unmanaged=banked.to_result(UNMANAGED_LABEL),
        managed=banked.to_result("managed"),
    )
