"""Experiment EXT-DTM: closed-loop thermal management driven by the sensor.

The final justification for a built-in temperature sensor is the system
it enables: dynamic thermal management.  This extension runs the
closed-loop simulation (workload power -> die temperature -> multiplexed
sensor readings -> throttling policy -> workload power ...) and compares
it against the same die with no thermal management, answering the two
questions a product team would ask: does the sensor-driven policy keep
the junction below the limit, and how much performance does it cost?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.readout import ReadoutConfig
from ..core.thermal_manager import DtmResult, DynamicThermalManager, ThrottlingPolicy
from ..oscillator.config import RingConfiguration
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology
from ..thermal.floorplan import Floorplan

__all__ = ["DtmStudyResult", "run_dtm_study"]


@dataclass(frozen=True)
class DtmStudyResult:
    """Outcome of the closed-loop thermal-management experiment."""

    technology_name: str
    configuration_label: str
    limit_c: float
    unmanaged: DtmResult
    managed: DtmResult

    def peak_reduction_c(self) -> float:
        """How much the policy lowers the peak junction temperature."""
        return self.unmanaged.peak_temperature_c() - self.managed.peak_temperature_c()

    def keeps_die_below_limit(self, tolerance_c: float = 2.0) -> bool:
        """Whether the managed die stays (almost) below the limit."""
        return self.managed.peak_temperature_c() <= self.limit_c + tolerance_c

    def performance_cost(self) -> float:
        """Fraction of performance given up by throttling (0 = none)."""
        return 1.0 - self.managed.average_performance()

    def format_summary(self) -> str:
        lines = [
            "EXT-DTM - sensor-driven dynamic thermal management",
            f"  ring configuration       : {self.configuration_label}",
            f"  junction limit            : {self.limit_c:.0f} C",
            f"  unmanaged peak            : {self.unmanaged.peak_temperature_c():.1f} C "
            f"({self.unmanaged.time_above_limit_s() * 1e3:.0f} ms above the limit)",
            f"  managed peak              : {self.managed.peak_temperature_c():.1f} C "
            f"({self.managed.time_above_limit_s() * 1e3:.0f} ms above the limit)",
            f"  peak reduction            : {self.peak_reduction_c():.1f} C",
            f"  throttle events           : {self.managed.throttle_events()}",
            f"  average performance       : {self.managed.average_performance() * 100:.1f} % "
            f"(cost {self.performance_cost() * 100:.1f} %)",
            f"  state occupancy           : "
            + ", ".join(
                f"{name} {fraction * 100:.0f}%"
                for name, fraction in self.managed.state_occupancy().items()
            ),
        ]
        return "\n".join(lines)


def run_dtm_study(
    technology: Optional[Technology] = None,
    configuration_text: str = "2INV+3NAND2",
    workload_scale: float = 1.6,
    duration_s: float = 2.0,
    control_interval_s: float = 0.02,
    limit_c: float = 115.0,
    sensor_grid: int = 3,
    grid_resolution: int = 20,
) -> DtmStudyResult:
    """Run the DTM experiment: unmanaged versus sensor-managed die.

    ``workload_scale`` > 1 represents a power virus / worst-case workload
    that would push the unmanaged die past the junction limit — the case
    thermal management exists for.
    """
    tech = technology if technology is not None else CMOS035
    configuration = RingConfiguration.parse(configuration_text)

    floorplan = Floorplan.example_processor()
    floorplan.add_sensor_grid(sensor_grid, sensor_grid)

    policy = ThrottlingPolicy(
        throttle_threshold_c=limit_c - 10.0,
        release_threshold_c=limit_c - 25.0,
        emergency_threshold_c=limit_c + 5.0,
    )
    manager = DynamicThermalManager(
        tech,
        floorplan,
        configuration,
        policy=policy,
        readout=ReadoutConfig(),
        grid_resolution=grid_resolution,
    )

    # Unmanaged reference: the *same* die, sensors and thermal model run
    # under a policy whose thresholds sit far above any reachable
    # junction temperature, so it observes but never throttles.  Run as
    # a per-run policy override on the one manager, the two simulations
    # also share the cached backward-Euler factorization.
    never_throttle = ThrottlingPolicy(
        throttle_threshold_c=10_000.0,
        release_threshold_c=9_000.0,
        emergency_threshold_c=11_000.0,
    )

    managed = manager.run(
        duration_s=duration_s,
        control_interval_s=control_interval_s,
        limit_c=limit_c,
        workload_scale=workload_scale,
    )
    unmanaged = manager.run(
        duration_s=duration_s,
        control_interval_s=control_interval_s,
        limit_c=limit_c,
        workload_scale=workload_scale,
        policy=never_throttle,
    )
    return DtmStudyResult(
        technology_name=tech.name,
        configuration_label=configuration.label(),
        limit_c=limit_c,
        unmanaged=unmanaged,
        managed=managed,
    )
