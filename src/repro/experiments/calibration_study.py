"""Experiment ABL-CAL: calibration effort versus accuracy across process spread.

Cell-based sensors must live with whatever the digital process gives
them, so the absolute frequency of the ring spreads with process while
(per the paper's argument) the linearity barely moves.  This ablation
quantifies how much calibration effort the smart unit needs: the
worst-case temperature error over corners and Monte-Carlo samples with
no per-die calibration, with a one-point calibration, and with a
two-point calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.statistics import SummaryStatistics, summarize
from ..cells.library import default_library
from ..core.calibration import (
    CalibrationError,
    design_calibration,
    one_point_calibration,
)
from ..core.readout import PeriodCounter, ReadoutConfig
from ..core.sensor import SmartTemperatureSensor
from ..oscillator.config import RingConfiguration
from ..oscillator.period import default_temperature_grid, validate_temperature_grid
from ..oscillator.ring import RingOscillator
from ..tech.corners import corner_technologies, sample_technologies
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology
from ..tech.stacked import stack_technologies

__all__ = ["CalibrationStudyResult", "run_calibration_study"]


@dataclass(frozen=True)
class CalibrationStudyResult:
    """Outcome of the calibration ablation."""

    technology_name: str
    configuration_label: str
    sample_count: int
    errors_by_scheme: Dict[str, SummaryStatistics]
    worst_by_scheme: Dict[str, float]

    def format_table(self) -> str:
        lines = [
            "ABL-CAL - worst-case temperature error vs calibration scheme",
            f"ring: {self.configuration_label}, {self.sample_count} process samples "
            "(corners + Monte-Carlo)",
            f"{'scheme':>12s} {'mean worst err (C)':>20s} {'max worst err (C)':>20s}",
        ]
        for scheme in ("design", "one-point", "two-point"):
            stats = self.errors_by_scheme[scheme]
            lines.append(
                f"{scheme:>12s} {stats.mean:20.3f} {self.worst_by_scheme[scheme]:20.3f}"
            )
        return "\n".join(lines)


def _sensor_for(tech: Technology, configuration: RingConfiguration,
                readout: ReadoutConfig) -> SmartTemperatureSensor:
    library = default_library(tech)
    ring = RingOscillator(library, configuration)
    return SmartTemperatureSensor(ring, readout=readout, name=f"cal_{tech.name}")


def run_calibration_study(
    technology: Optional[Technology] = None,
    configuration_text: str = "2INV+3NAND2",
    readout: ReadoutConfig = ReadoutConfig(),
    monte_carlo_samples: int = 12,
    temperatures_c: Optional[Sequence[float]] = None,
    reference_temperature_c: float = 25.0,
    seed: int = 20250617,
    scalar: bool = False,
) -> CalibrationStudyResult:
    """Run the calibration-scheme ablation.

    On the default (vectorized) path the whole corner + Monte-Carlo
    population is stacked into one struct-of-arrays technology
    (:func:`~repro.tech.stacked.stack_technologies`) and every scheme's
    error grid — design, one-point, two-point, each over all samples
    and all temperatures — is computed from a single
    ``(sample x temperature)`` period matrix plus one batch counter
    conversion.  ``scalar=True`` keeps the original
    one-sensor-per-sample loop as the equivalence oracle.

    Parameters
    ----------
    technology:
        Typical technology; corners and Monte-Carlo samples are derived
        from it.
    configuration_text:
        Ring configuration of the sensor.
    readout:
        Counter readout configuration.
    monte_carlo_samples:
        Number of Monte-Carlo technology samples in addition to the five
        corners.
    temperatures_c:
        Evaluation sweep (validated and sorted up front).
    reference_temperature_c:
        Insertion temperature of the one-point calibration.
    seed:
        RNG seed for the Monte-Carlo sampling.
    scalar:
        When true, sweep every sample through its own sensor object one
        temperature at a time (the pre-engine reference path).
    """
    tech = technology if technology is not None else CMOS035
    temps = (
        validate_temperature_grid(temperatures_c, context="calibration study sweep")
        if temperatures_c is not None
        else default_temperature_grid(points=17)
    )
    configuration = RingConfiguration.parse(configuration_text)

    # Design-time (typical-process) transfer function: the shared slope
    # source for the design and one-point schemes.
    typical_sensor = _sensor_for(tech, configuration, readout)
    design_transfer = typical_sensor.transfer_function(temps, scalar=scalar)
    design_cal = design_calibration(
        design_transfer.measured_periods_s, design_transfer.temperatures_c
    )

    samples: List[Technology] = list(corner_technologies(tech).values())
    samples.extend(sample_technologies(tech, monte_carlo_samples, seed=seed))

    if scalar:
        worst_errors: Dict[str, List[float]] = {
            "design": [], "one-point": [], "two-point": []
        }
        for sample in samples:
            sensor = _sensor_for(sample, configuration, readout)

            sensor.install_calibration(design_cal)
            worst_errors["design"].append(sensor.worst_case_error_c(temps, scalar=True))

            one_point = one_point_calibration(
                sensor.measured_period(reference_temperature_c),
                reference_temperature_c,
                design_cal.slope_c_per_second,
            )
            sensor.install_calibration(one_point)
            worst_errors["one-point"].append(
                sensor.worst_case_error_c(temps, scalar=True)
            )

            sensor.calibrate_two_point(float(temps[0]), float(temps[-1]))
            worst_errors["two-point"].append(
                sensor.worst_case_error_c(temps, scalar=True)
            )
    else:
        worst_errors = _batched_worst_errors(
            tech,
            configuration,
            readout,
            samples,
            temps,
            reference_temperature_c,
            design_cal,
        )

    return CalibrationStudyResult(
        technology_name=tech.name,
        configuration_label=configuration.label(),
        sample_count=len(samples),
        errors_by_scheme={k: summarize(v) for k, v in worst_errors.items()},
        worst_by_scheme={k: float(np.max(v)) for k, v in worst_errors.items()},
    )


def _batched_worst_errors(
    tech: Technology,
    configuration: RingConfiguration,
    readout: ReadoutConfig,
    samples: Sequence[Technology],
    temps: np.ndarray,
    reference_temperature_c: float,
    design_cal,
) -> Dict[str, List[float]]:
    """All three calibration schemes over the whole population at once.

    One stacked ``(sample x temperature)`` period matrix — declared as
    one sweep over the named ``sample`` and ``temperature`` axes
    (:class:`~repro.engine.sweep.Sweep`) — and one batch counter
    conversion feed every scheme; the per-scheme calibrations reduce to
    row-wise affine maps of the measured-period matrix, so the
    worst-case errors come out of plain ndarray reductions.  Produces
    the same numbers as the per-sample sensor loop (the conversions and
    calibration formulas are identical elementwise), which the stacked
    equivalence tests pin down.
    """
    from ..engine.sweep import Axis, Sweep

    population = stack_technologies(samples)
    base_ring = RingOscillator(default_library(tech), configuration)

    # One sweep over the full grid plus the insertion temperature: the
    # evaluation is elementwise in temperature, so appending the
    # reference point costs one extra column instead of a second
    # stacked-population rebind.  When the grid already contains the
    # reference point its column is reused — temperature coordinates
    # must be unique per axis.
    temps = np.asarray(temps, dtype=float)
    existing = np.nonzero(temps == float(reference_temperature_c))[0]
    if existing.size:
        grid = temps
        ref_column = int(existing[0])
    else:
        grid = np.append(temps, reference_temperature_c)
        ref_column = int(temps.size)
    all_periods = np.asarray(
        Sweep(ring=base_ring)
        .over(Axis.sample(population))
        .over(Axis.temperature(grid))
        .run()
        .values
    )
    counter = PeriodCounter(readout)

    periods = all_periods[:, : temps.size]
    codes, _ = counter.convert_batch(periods)
    measured = counter.codes_to_periods(codes)  # (samples, temperatures)

    def worst(estimates: np.ndarray) -> List[float]:
        return list(np.max(np.abs(estimates - temps[None, :]), axis=1))

    # Design scheme: one shared typical-process line over every sample.
    design_estimates = design_cal.temperature(measured)

    # One-point: design slope anchored at each sample's own measured
    # period at the insertion temperature.
    ref_periods = all_periods[:, ref_column : ref_column + 1]
    ref_codes, _ = counter.convert_batch(ref_periods)
    ref_measured = counter.codes_to_periods(ref_codes)[:, 0]
    slope = design_cal.slope_c_per_second
    one_point_offsets = reference_temperature_c - slope * ref_measured
    one_point_estimates = slope * measured + one_point_offsets[:, None]

    # Two-point: each sample's own line through the sweep endpoints
    # (exactly the periods already measured at temps[0] / temps[-1]).
    low_measured = measured[:, 0]
    high_measured = measured[:, -1]
    if np.any(high_measured == low_measured):
        # Same guard the per-sample oracle hits in two_point_calibration
        # when both insertion periods quantise to one counter code.
        raise CalibrationError("calibration periods must differ")
    two_point_slopes = (temps[-1] - temps[0]) / (high_measured - low_measured)
    two_point_offsets = temps[0] - two_point_slopes * low_measured
    two_point_estimates = (
        two_point_slopes[:, None] * measured + two_point_offsets[:, None]
    )

    return {
        "design": worst(design_estimates),
        "one-point": worst(one_point_estimates),
        "two-point": worst(two_point_estimates),
    }
