"""Experiment ABL-CAL: calibration effort versus accuracy across process spread.

Cell-based sensors must live with whatever the digital process gives
them, so the absolute frequency of the ring spreads with process while
(per the paper's argument) the linearity barely moves.  This ablation
quantifies how much calibration effort the smart unit needs: the
worst-case temperature error over corners and Monte-Carlo samples with
no per-die calibration, with a one-point calibration, and with a
two-point calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.statistics import SummaryStatistics, summarize
from ..cells.library import default_library
from ..core.calibration import design_calibration, one_point_calibration
from ..core.readout import ReadoutConfig
from ..core.sensor import SmartTemperatureSensor
from ..oscillator.config import RingConfiguration
from ..oscillator.period import default_temperature_grid
from ..oscillator.ring import RingOscillator
from ..tech.corners import corner_technologies, sample_technologies
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology

__all__ = ["CalibrationStudyResult", "run_calibration_study"]


@dataclass(frozen=True)
class CalibrationStudyResult:
    """Outcome of the calibration ablation."""

    technology_name: str
    configuration_label: str
    sample_count: int
    errors_by_scheme: Dict[str, SummaryStatistics]
    worst_by_scheme: Dict[str, float]

    def format_table(self) -> str:
        lines = [
            "ABL-CAL - worst-case temperature error vs calibration scheme",
            f"ring: {self.configuration_label}, {self.sample_count} process samples "
            "(corners + Monte-Carlo)",
            f"{'scheme':>12s} {'mean worst err (C)':>20s} {'max worst err (C)':>20s}",
        ]
        for scheme in ("design", "one-point", "two-point"):
            stats = self.errors_by_scheme[scheme]
            lines.append(
                f"{scheme:>12s} {stats.mean:20.3f} {self.worst_by_scheme[scheme]:20.3f}"
            )
        return "\n".join(lines)


def _sensor_for(tech: Technology, configuration: RingConfiguration,
                readout: ReadoutConfig) -> SmartTemperatureSensor:
    library = default_library(tech)
    ring = RingOscillator(library, configuration)
    return SmartTemperatureSensor(ring, readout=readout, name=f"cal_{tech.name}")


def run_calibration_study(
    technology: Optional[Technology] = None,
    configuration_text: str = "2INV+3NAND2",
    readout: ReadoutConfig = ReadoutConfig(),
    monte_carlo_samples: int = 12,
    temperatures_c: Optional[Sequence[float]] = None,
    reference_temperature_c: float = 25.0,
    seed: int = 20250617,
) -> CalibrationStudyResult:
    """Run the calibration-scheme ablation.

    Parameters
    ----------
    technology:
        Typical technology; corners and Monte-Carlo samples are derived
        from it.
    configuration_text:
        Ring configuration of the sensor.
    readout:
        Counter readout configuration.
    monte_carlo_samples:
        Number of Monte-Carlo technology samples in addition to the five
        corners.
    temperatures_c:
        Evaluation sweep.
    reference_temperature_c:
        Insertion temperature of the one-point calibration.
    seed:
        RNG seed for the Monte-Carlo sampling.
    """
    tech = technology if technology is not None else CMOS035
    temps = (
        np.asarray(temperatures_c, dtype=float)
        if temperatures_c is not None
        else default_temperature_grid(points=17)
    )
    configuration = RingConfiguration.parse(configuration_text)

    # Design-time (typical-process) transfer function: the shared slope
    # source for the design and one-point schemes.
    typical_sensor = _sensor_for(tech, configuration, readout)
    design_transfer = typical_sensor.transfer_function(temps)
    design_cal = design_calibration(
        design_transfer.measured_periods_s, design_transfer.temperatures_c
    )

    samples: List[Technology] = list(corner_technologies(tech).values())
    samples.extend(sample_technologies(tech, monte_carlo_samples, seed=seed))

    worst_errors: Dict[str, List[float]] = {"design": [], "one-point": [], "two-point": []}
    for sample in samples:
        sensor = _sensor_for(sample, configuration, readout)

        sensor.install_calibration(design_cal)
        worst_errors["design"].append(sensor.worst_case_error_c(temps))

        one_point = one_point_calibration(
            sensor.measured_period(reference_temperature_c),
            reference_temperature_c,
            design_cal.slope_c_per_second,
        )
        sensor.install_calibration(one_point)
        worst_errors["one-point"].append(sensor.worst_case_error_c(temps))

        sensor.calibrate_two_point(float(temps[0]), float(temps[-1]))
        worst_errors["two-point"].append(sensor.worst_case_error_c(temps))

    return CalibrationStudyResult(
        technology_name=tech.name,
        configuration_label=configuration.label(),
        sample_count=len(samples),
        errors_by_scheme={k: summarize(v) for k, v in worst_errors.items()},
        worst_by_scheme={k: float(np.max(v)) for k, v in worst_errors.items()},
    )
