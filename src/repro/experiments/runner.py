"""Run every reproduction experiment and emit a consolidated text report.

``python -m repro.experiments.runner`` regenerates the data behind every
figure and claim of the paper (and the ablations added by this
reproduction) and prints the tables recorded in EXPERIMENTS.md.  The
benchmark harness under ``benchmarks/`` wraps the same entry points with
pytest-benchmark so runtimes are tracked as well.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..engine.executors import EXECUTOR_ENV, TILE_ELEMENTS_ENV, WORKERS_ENV
from ..tech.libraries import CMOS035, get_technology
from ..tech.parameters import Technology
from .baseline_comparison import run_baseline_comparison
from .calibration_study import run_calibration_study
from .dtm_study import run_dtm_policy_sweep, run_dtm_study
from ..thermal.operator import METHOD_ENV, SOLVE_METHODS, THRESHOLD_ENV
from .fig1_waveform import run_fig1
from .fig2_sizing import run_fig2
from .fig3_cellmix import run_fig3
from .scaling_study import run_scaling_study
from .selfheating_study import run_selfheating_study
from .smart_unit import run_smart_unit
from .placement_study import run_placement_study
from .stage_count import run_stage_count
from .supply_sensitivity import run_supply_sensitivity
from .thermal_map_study import run_thermal_map_study, run_thermal_resolution_study

__all__ = ["ExperimentRegistry", "run_all", "main"]


@dataclass(frozen=True)
class ExperimentRegistry:
    """Mapping of experiment ids to the callables that produce their report."""

    experiments: Dict[str, Callable[[Technology], str]]

    def names(self) -> List[str]:
        return list(self.experiments)

    def run(self, name: str, technology: Technology) -> str:
        if name not in self.experiments:
            raise KeyError(
                f"unknown experiment {name!r}; available: {', '.join(self.experiments)}"
            )
        return self.experiments[name](technology)


def _fig1_report(technology: Technology) -> str:
    return run_fig1(technology, cycles=4.0, points_per_period=150).format_summary()


def _fig2_report(technology: Technology) -> str:
    return run_fig2(technology).format_table()


def _fig3_report(technology: Technology) -> str:
    return run_fig3(technology).format_table()


def _stages_report(technology: Technology) -> str:
    return run_stage_count(technology).format_table()


def _smart_report(technology: Technology) -> str:
    return run_smart_unit(technology).format_summary()


def _baseline_report(technology: Technology) -> str:
    return run_baseline_comparison(technology).format_table()


def _selfheat_report(technology: Technology) -> str:
    return run_selfheating_study(technology).format_table()


def _calibration_report(technology: Technology) -> str:
    return run_calibration_study(technology, monte_carlo_samples=8).format_table()


def _supply_report(technology: Technology) -> str:
    return run_supply_sensitivity(technology).format_table()


def _scaling_report(technology: Technology) -> str:
    return run_scaling_study(reoptimize=True).format_table()


def _dtm_report(technology: Technology) -> str:
    return run_dtm_study(technology, duration_s=1.0, grid_resolution=16).format_summary()


def _thermal_map_report(technology: Technology) -> str:
    return run_thermal_map_study(
        technology, sample_count=25, grid_resolution=16
    ).format_table()


def _dtm_sweep_report(technology: Technology) -> str:
    return run_dtm_policy_sweep(
        technology, duration_s=1.0, grid_resolutions=16
    ).format_table()


def _placement_report(technology: Technology) -> str:
    return run_placement_study(
        technology, grid_resolution=16, candidate_grid=4, sensor_count=4, anneal_steps=80
    ).format_table()


def _thermal_resolution_report(technology: Technology) -> str:
    return run_thermal_resolution_study(
        technology, sample_count=25, grid_resolutions=(8, 12, 16, 24)
    ).format_table()


def default_registry() -> ExperimentRegistry:
    """The standard experiment set (ids match DESIGN.md)."""
    return ExperimentRegistry(
        experiments={
            "FIG1": _fig1_report,
            "FIG2": _fig2_report,
            "FIG3": _fig3_report,
            "STAGES": _stages_report,
            "SMART": _smart_report,
            "BASE": _baseline_report,
            "ABL-SELFHEAT": _selfheat_report,
            "ABL-CAL": _calibration_report,
            "EXT-SUPPLY": _supply_report,
            "EXT-SCALING": _scaling_report,
            "EXT-DTM": _dtm_report,
            "EXT-DTMSWEEP": _dtm_sweep_report,
            "EXT-THERMALMAP": _thermal_map_report,
            "EXT-THERMALRES": _thermal_resolution_report,
            "EXT-PLACEMENT": _placement_report,
        }
    )


def run_all(
    technology: Optional[Technology] = None,
    only: Optional[List[str]] = None,
    registry: Optional[ExperimentRegistry] = None,
) -> str:
    """Run the selected experiments and return the consolidated report."""
    tech = technology if technology is not None else CMOS035
    reg = registry if registry is not None else default_registry()
    names = only if only else reg.names()
    sections: List[str] = [
        "Reproduction report: Smart Temperature Sensor for Thermal Testing of "
        "Cell-Based ICs (DATE 2005)",
        f"technology: {tech.name} (vdd={tech.vdd} V)",
        "=" * 78,
    ]
    for name in names:
        sections.append(reg.run(name, tech))
        sections.append("-" * 78)
    return "\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--technology",
        default="cmos035",
        help="technology node to evaluate (default: cmos035)",
    )
    parser.add_argument(
        "--experiment",
        action="append",
        dest="experiments",
        help="run only the named experiment (may be repeated); "
        "see --list for the available ids",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="print the available experiment ids and exit",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=("dense", "serial", "process", "memmap"),
        help="execution backend for every sweep in the run: dense "
        "single-pass (default), serial tiles, a multiprocess pool, or "
        "out-of-core memmap assembly",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count of the process backend (default: cpu count)",
    )
    parser.add_argument(
        "--tile-elements",
        type=int,
        default=None,
        help="per-tile element budget for tiled backends "
        "(default: 2**20 elements, an 8 MiB tile)",
    )
    parser.add_argument(
        "--thermal-method",
        default=None,
        choices=[m for m in SOLVE_METHODS if m != "auto"],
        help="resolve every 'auto' thermal solve to this method "
        "(direct factorization, ILU-preconditioned CG, or "
        "geometric-multigrid CG); explicit method choices in code win",
    )
    parser.add_argument(
        "--thermal-iterative-threshold",
        type=int,
        default=None,
        help="unknown count above which 'auto' thermal solves switch "
        "from direct factorization to multigrid CG (default: the "
        "operator's built-in threshold)",
    )
    serve_group = parser.add_argument_group(
        "service mode",
        "run the sweep-evaluation service (repro.serve) instead of the "
        "experiment batch; the executor/thermal knobs above still apply "
        "to every served evaluation",
    )
    serve_group.add_argument(
        "--serve",
        action="store_true",
        help="start a persistent sweep server and block until shutdown",
    )
    serve_group.add_argument(
        "--host",
        default=None,
        help="(with --serve) bind address (default: REPRO_SERVE_HOST or 127.0.0.1)",
    )
    serve_group.add_argument(
        "--port",
        type=int,
        default=None,
        help="(with --serve) bind port, 0 for ephemeral "
        "(default: REPRO_SERVE_PORT or 7753)",
    )
    serve_group.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help="(with --serve) result-cache budget in payload bytes "
        "(default: REPRO_SERVE_CACHE_BYTES or 64 MiB)",
    )
    serve_group.add_argument(
        "--batch-window-ms",
        type=float,
        default=None,
        help="(with --serve) coalescing window for point queries and "
        "overlapping sweeps (default: REPRO_SERVE_BATCH_WINDOW_MS or 5 ms)",
    )
    serve_group.add_argument(
        "--serve-workers",
        type=int,
        default=None,
        help="(with --serve) concurrent evaluation slots; above 1, "
        "evaluations route through a shared process pool "
        "(default: REPRO_SERVE_WORKERS or 1)",
    )
    serve_group.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="(with --serve) bounded evaluation-queue depth; beyond it "
        "requests fail fast with 'busy' "
        "(default: REPRO_SERVE_QUEUE_DEPTH or 128)",
    )
    serve_group.add_argument(
        "--cache-dir",
        default=None,
        help="(with --serve) disk cache directory: results persist "
        "across server restarts (default: REPRO_SERVE_CACHE_DIR; "
        "unset = memory only)",
    )
    serve_group.add_argument(
        "--disk-cache-bytes",
        type=int,
        default=None,
        help="(with --serve) disk-tier byte budget, LRU-evicted by "
        "file mtime (default: REPRO_SERVE_DISK_CACHE_BYTES or 1 GiB)",
    )
    args = parser.parse_args(argv)
    # The registry callables take only a technology; the execution
    # backend rides on the documented environment knobs instead, so it
    # reaches every Sweep.run in every experiment uniformly.
    if args.executor is not None:
        os.environ[EXECUTOR_ENV] = args.executor
    if args.workers is not None:
        os.environ[WORKERS_ENV] = str(args.workers)
    if args.tile_elements is not None:
        os.environ[TILE_ELEMENTS_ENV] = str(args.tile_elements)
    if args.thermal_method is not None:
        os.environ[METHOD_ENV] = args.thermal_method
    if args.thermal_iterative_threshold is not None:
        os.environ[THRESHOLD_ENV] = str(args.thermal_iterative_threshold)
    if args.serve:
        if args.experiments or args.list_experiments or args.output:
            parser.error("--serve runs the service; drop the experiment options")
        # Imported here so the batch path stays free of the service
        # stack (and vice versa: a server embeds no experiment code).
        from ..serve.server import main as serve_main

        serve_argv: List[str] = []
        if args.host is not None:
            serve_argv += ["--host", args.host]
        if args.port is not None:
            serve_argv += ["--port", str(args.port)]
        if args.cache_bytes is not None:
            serve_argv += ["--cache-bytes", str(args.cache_bytes)]
        if args.batch_window_ms is not None:
            serve_argv += ["--batch-window-ms", str(args.batch_window_ms)]
        if args.serve_workers is not None:
            serve_argv += ["--workers", str(args.serve_workers)]
        if args.queue_depth is not None:
            serve_argv += ["--queue-depth", str(args.queue_depth)]
        if args.cache_dir is not None:
            serve_argv += ["--cache-dir", args.cache_dir]
        if args.disk_cache_bytes is not None:
            serve_argv += ["--disk-cache-bytes", str(args.disk_cache_bytes)]
        return serve_main(serve_argv)
    registry = default_registry()
    if args.list_experiments:
        print("\n".join(registry.names()))
        return 0
    unknown = [
        name for name in (args.experiments or []) if name not in registry.experiments
    ]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(available: {', '.join(registry.names())})"
        )
    technology = get_technology(args.technology)
    report = run_all(technology, only=args.experiments, registry=registry)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
