"""Experiment EXT-THERMALMAP: how many sensors does a thermal map need?

The paper motivates the multiplexer with thermal mapping: several ring
oscillators "distributed on different points" reconstruct the die's
temperature field.  The open engineering question is the sensor-grid
*density* — each extra sensor costs area and scan time, each removed
sensor blurs the reconstruction — and whether the answer survives
process variation, since every die's sensors carry their own spread.

This experiment answers both with one Monte-Carlo cross product per
density, declared through the sweep engine's ``site`` axis:

* the example processor's steady-state field is solved once (through
  the cached :class:`~repro.thermal.operator.ThermalOperator`
  factorization — every density reuses it),
* for each candidate sensor grid a
  :class:`~repro.core.sensor_bank.SensorBank` is placed on the
  floorplan, the whole Monte-Carlo population is two-point calibrated
  in one vectorized pass, and the ``site x sample`` scan runs as a
  single declarative :class:`~repro.engine.sweep.Sweep` over the
  ``code`` observable (every site at its own junction temperature), and
* the full-die map of *every sample* is rebuilt in one broadcast
  inverse-distance interpolation, giving the reconstruction RMS and
  hotspot errors as distributions over the population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cells.library import default_library
from ..core.mapping import reconstruct_maps
from ..core.sensor_bank import SensorBank
from ..engine.sweep import Axis, Sweep
from ..oscillator.config import RingConfiguration
from ..tech.corners import sample_technology_array
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology
from ..thermal.floorplan import Floorplan
from ..thermal.grid import ThermalGrid
from ..thermal.operator import ThermalOperator
from ..thermal.power import PowerMap

__all__ = [
    "ThermalMapDensityPoint",
    "ThermalMapStudyResult",
    "ThermalResolutionPoint",
    "ThermalResolutionStudyResult",
    "run_thermal_map_study",
    "run_thermal_resolution_study",
]


@dataclass(frozen=True)
class ThermalMapDensityPoint:
    """Reconstruction quality of one sensor-grid density (over samples)."""

    sensor_columns: int
    sensor_rows: int
    site_count: int
    scan_time_s: float
    worst_site_error_c: float
    mean_map_rms_error_c: float
    max_map_rms_error_c: float
    mean_abs_hotspot_error_c: float
    max_abs_hotspot_error_c: float


@dataclass(frozen=True)
class ThermalMapStudyResult:
    """Outcome of the thermal-map density x Monte-Carlo experiment."""

    technology_name: str
    configuration_label: str
    sample_count: int
    true_peak_c: float
    true_gradient_c: float
    points: List[ThermalMapDensityPoint]

    def best_density_under(self, rms_limit_c: float) -> Optional[ThermalMapDensityPoint]:
        """Sparsest grid whose worst-sample RMS error meets a budget."""
        for point in self.points:
            if point.max_map_rms_error_c <= rms_limit_c:
                return point
        return None

    def format_table(self) -> str:
        lines = [
            "EXT-THERMALMAP - sensor-grid density vs thermal-map quality "
            f"({self.sample_count} Monte-Carlo samples)",
            f"ring: {self.configuration_label}, die peak "
            f"{self.true_peak_c:.1f} C, gradient {self.true_gradient_c:.1f} C",
            f"{'grid':>6s} {'sites':>6s} {'scan':>9s} {'worst site':>11s} "
            f"{'rms mean/max':>14s} {'|hotspot| mean/max':>19s}",
        ]
        for point in self.points:
            lines.append(
                f"{point.sensor_columns:>3d}x{point.sensor_rows:<2d} "
                f"{point.site_count:>6d} "
                f"{point.scan_time_s * 1e6:>7.1f}us "
                f"{point.worst_site_error_c:>9.2f} C "
                f"{point.mean_map_rms_error_c:>6.2f}/{point.max_map_rms_error_c:<5.2f} C "
                f"{point.mean_abs_hotspot_error_c:>8.2f}/{point.max_abs_hotspot_error_c:<5.2f} C"
            )
        return "\n".join(lines)


def run_thermal_map_study(
    technology: Optional[Technology] = None,
    configuration_text: str = "2INV+3NAND2",
    sensor_grids: Sequence[int] = (1, 2, 3, 4),
    sample_count: int = 100,
    seed: int = 2005,
    grid_resolution: int = 24,
    ambient_c: float = 45.0,
    calibration_temperatures_c: Tuple[float, float] = (-50.0, 150.0),
    executor: Optional[object] = None,
    max_tile_elements: Optional[int] = None,
) -> ThermalMapStudyResult:
    """Run the sensor-density x Monte-Carlo thermal-mapping experiment.

    For each ``k`` in ``sensor_grids`` a ``k x k`` bank is placed on the
    example processor and scanned against the whole technology
    population in one ``site x sample`` sweep; the reported errors are
    statistics over the population.  ``executor`` /
    ``max_tile_elements`` select a tiled execution backend for the
    scans (see :meth:`repro.engine.Sweep.run`); the defaults keep the
    dense path (or whatever ``REPRO_SWEEP_EXECUTOR`` names).
    """
    tech = technology if technology is not None else CMOS035
    configuration = RingConfiguration.parse(configuration_text)
    library = default_library(tech)
    population = sample_technology_array(tech, sample_count, seed=seed)

    # One steady-state solve serves every density: the sensor grid does
    # not change the workload, only where it is observed.
    base_plan = Floorplan.example_processor()
    power = PowerMap.from_floorplan(base_plan, nx=grid_resolution, ny=grid_resolution)
    grid = ThermalGrid.for_power_map(power)
    true_map = ThermalOperator.for_grid(grid).solve_steady_state(power, ambient_c)
    hot_row, hot_col = np.unravel_index(
        int(np.argmax(true_map.values_c)), true_map.values_c.shape
    )
    true_peak = true_map.max_c()

    points: List[ThermalMapDensityPoint] = []
    for k in sensor_grids:
        floorplan = Floorplan.example_processor()
        floorplan.add_sensor_grid(int(k), int(k))
        bank = SensorBank.from_floorplan(tech, floorplan, configuration, library=library)
        xs, ys = bank.positions()
        truths = true_map.sample_points(xs, ys)

        calibration = bank.two_point_calibration(
            *calibration_temperatures_c, technologies=population
        )
        # The scan declares the thermal grid itself as a (one-point)
        # resolution axis: the sweep engine re-solves the die field
        # through the same cached ThermalOperator entry the true map
        # above came from and reads every site at its local junction
        # temperature — no hand-rolled solve-then-gather loop.
        codes = (
            Sweep()
            .over(
                Axis.resolution([grid_resolution], base_plan, ambient_c=ambient_c)
            )
            .over(Axis.site(bank))
            .over(Axis.sample(population))
            .observe("code")
            .run(executor=executor, max_tile_elements=max_tile_elements)
            .select(resolution=grid_resolution)
            .values
        )
        measured = bank.counter.codes_to_periods(codes)
        estimates = calibration.estimate(measured)  # (site, sample)

        worst_site = float(np.max(np.abs(estimates - truths[:, np.newaxis])))
        maps = reconstruct_maps(true_map, xs, ys, estimates)  # (sample, ny, nx)
        rms = np.sqrt(np.mean((maps - true_map.values_c) ** 2, axis=(1, 2)))
        # The hotspot sits on a cell centre, where the bilinear sample
        # reduces to the cell value itself.
        hotspot = np.abs(maps[:, hot_row, hot_col] - true_peak)

        points.append(
            ThermalMapDensityPoint(
                sensor_columns=int(k),
                sensor_rows=int(k),
                site_count=bank.site_count,
                scan_time_s=bank.site_count * bank.conversion_time_s,
                worst_site_error_c=worst_site,
                mean_map_rms_error_c=float(np.mean(rms)),
                max_map_rms_error_c=float(np.max(rms)),
                mean_abs_hotspot_error_c=float(np.mean(hotspot)),
                max_abs_hotspot_error_c=float(np.max(hotspot)),
            )
        )

    return ThermalMapStudyResult(
        technology_name=tech.name,
        configuration_label=configuration.label(),
        sample_count=sample_count,
        true_peak_c=true_peak,
        true_gradient_c=true_map.gradient_c(),
        points=points,
    )


@dataclass(frozen=True)
class ThermalResolutionPoint:
    """Reconstruction quality of one thermal-grid resolution."""

    grid_resolution: int
    unknown_count: int
    solve_method: str
    true_peak_c: float
    true_gradient_c: float
    peak_shift_from_finest_c: float
    worst_site_error_c: float
    mean_map_rms_error_c: float
    max_map_rms_error_c: float


@dataclass(frozen=True)
class ThermalResolutionStudyResult:
    """Outcome of the thermal grid-refinement (resolution) experiment."""

    technology_name: str
    configuration_label: str
    sample_count: int
    site_count: int
    points: List[ThermalResolutionPoint]

    def converged_resolution(self, peak_tolerance_c: float) -> Optional[int]:
        """Coarsest grid whose die peak sits within tolerance of the finest."""
        for point in self.points:
            if abs(point.peak_shift_from_finest_c) <= peak_tolerance_c:
                return point.grid_resolution
        return None

    def format_table(self) -> str:
        lines = [
            "EXT-THERMALRES - thermal-grid refinement vs map quality "
            f"({self.sample_count} Monte-Carlo samples, "
            f"{self.site_count} sensor sites)",
            f"ring: {self.configuration_label}",
            f"{'grid':>7s} {'unknowns':>9s} {'solve':>10s} {'die peak':>9s} "
            f"{'vs finest':>10s} {'worst site':>11s} {'rms mean/max':>14s}",
        ]
        for point in self.points:
            lines.append(
                f"{point.grid_resolution:>4d}^2 "
                f"{point.unknown_count:>9d} "
                f"{point.solve_method:>10s} "
                f"{point.true_peak_c:>7.1f} C "
                f"{point.peak_shift_from_finest_c:>+8.2f} C "
                f"{point.worst_site_error_c:>9.2f} C "
                f"{point.mean_map_rms_error_c:>6.2f}/{point.max_map_rms_error_c:<5.2f} C"
            )
        return "\n".join(lines)


def run_thermal_resolution_study(
    technology: Optional[Technology] = None,
    configuration_text: str = "2INV+3NAND2",
    sensor_grid: int = 3,
    grid_resolutions: Sequence[int] = (8, 12, 16, 24, 32),
    sample_count: int = 50,
    seed: int = 2005,
    ambient_c: float = 45.0,
    calibration_temperatures_c: Tuple[float, float] = (-50.0, 150.0),
    executor: Optional[object] = None,
    max_tile_elements: Optional[int] = None,
) -> ThermalResolutionStudyResult:
    """Run the thermal grid-refinement experiment through the sweep engine.

    The die field is re-solved at every grid resolution — the whole
    refinement declared as one ``resolution x site x sample`` sweep, so
    each resolution costs exactly one cached
    :class:`~repro.thermal.operator.ThermalOperator` entry (grids above
    the operator's unknown-count threshold route through the iterative
    CG fallback automatically) — and a fixed sensor bank is scanned
    against the Monte-Carlo population on each refinement.  The report
    answers the modelling question the density study leaves open: how
    fine must the thermal grid be before the die peak and the sensor-map
    reconstruction stop moving?
    """
    tech = technology if technology is not None else CMOS035
    configuration = RingConfiguration.parse(configuration_text)
    library = default_library(tech)
    population = sample_technology_array(tech, sample_count, seed=seed)
    resolutions = tuple(int(r) for r in grid_resolutions)

    base_plan = Floorplan.example_processor()
    floorplan = Floorplan.example_processor()
    floorplan.add_sensor_grid(int(sensor_grid), int(sensor_grid))
    bank = SensorBank.from_floorplan(tech, floorplan, configuration, library=library)
    xs, ys = bank.positions()
    calibration = bank.two_point_calibration(
        *calibration_temperatures_c, technologies=population
    )

    codes = (
        Sweep()
        .over(Axis.resolution(resolutions, base_plan, ambient_c=ambient_c))
        .over(Axis.site(bank))
        .over(Axis.sample(population))
        .observe("code")
        .run(executor=executor, max_tile_elements=max_tile_elements)
    )

    finest = max(resolutions)
    finest_peak: Optional[float] = None
    points: List[ThermalResolutionPoint] = []
    for resolution in sorted(resolutions, reverse=True):
        power = PowerMap.from_floorplan(base_plan, nx=resolution, ny=resolution)
        grid = ThermalGrid.for_power_map(power)
        operator = ThermalOperator.for_grid(grid)
        true_map = operator.solve_steady_state(power, ambient_c)
        if resolution == finest:
            finest_peak = true_map.max_c()
        truths = true_map.sample_points(xs, ys)

        resolution_codes = codes.select(resolution=resolution).values
        measured = bank.counter.codes_to_periods(resolution_codes)
        estimates = calibration.estimate(measured)  # (site, sample)
        worst_site = float(np.max(np.abs(estimates - truths[:, np.newaxis])))
        maps = reconstruct_maps(true_map, xs, ys, estimates)
        rms = np.sqrt(np.mean((maps - true_map.values_c) ** 2, axis=(1, 2)))

        points.append(
            ThermalResolutionPoint(
                grid_resolution=resolution,
                unknown_count=resolution * resolution,
                solve_method=operator.method,
                true_peak_c=true_map.max_c(),
                true_gradient_c=true_map.gradient_c(),
                peak_shift_from_finest_c=true_map.max_c() - finest_peak,
                worst_site_error_c=worst_site,
                mean_map_rms_error_c=float(np.mean(rms)),
                max_map_rms_error_c=float(np.max(rms)),
            )
        )

    points.sort(key=lambda point: point.grid_resolution)
    return ThermalResolutionStudyResult(
        technology_name=tech.name,
        configuration_label=configuration.label(),
        sample_count=sample_count,
        site_count=bank.site_count,
        points=points,
    )
