"""Experiment STAGES: linearity versus number of ring stages.

The paper states that the non-linearity depends only weakly on the
number of inverting stages — rings with 5, 9 or 21 stages behave
similarly — so the stage count can be chosen for period/area/readout
convenience rather than linearity.  This experiment quantifies that
claim: the absolute period scales with the stage count while the
normalised non-linearity stays essentially unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.linearity import NonlinearityResult, nonlinearity
from ..cells.library import CellLibrary, default_library
from ..oscillator.config import RingConfiguration
from ..oscillator.period import (
    TemperatureResponse,
    analytical_response,
    default_temperature_grid,
)
from ..oscillator.ring import RingOscillator
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology, TechnologyError

__all__ = ["StageCountPoint", "StageCountResult", "run_stage_count"]

#: Stage counts quoted by the paper.
PAPER_STAGE_COUNTS = (5, 9, 21)


@dataclass(frozen=True)
class StageCountPoint:
    """Evaluation of one ring length."""

    stage_count: int
    response: TemperatureResponse
    linearity: NonlinearityResult
    period_at_25c_s: float

    @property
    def max_abs_error_percent(self) -> float:
        return self.linearity.max_abs_error_percent


@dataclass(frozen=True)
class StageCountResult:
    """Outcome of the stage-count study."""

    technology_name: str
    cell_name: str
    points: List[StageCountPoint]

    def nonlinearity_spread_percent(self) -> float:
        """Spread of the worst-case non-linearity across stage counts."""
        errors = [point.max_abs_error_percent for point in self.points]
        return max(errors) - min(errors)

    def period_scaling_error(self) -> float:
        """How far the period deviates from proportional-to-stage-count.

        Returns the worst relative deviation of period/stage_count from
        its mean — close to zero when the period simply scales with N.
        """
        per_stage = np.asarray(
            [point.period_at_25c_s / point.stage_count for point in self.points]
        )
        mean = float(np.mean(per_stage))
        return float(np.max(np.abs(per_stage - mean)) / mean)

    def format_table(self) -> str:
        lines = [
            "STAGES - linearity vs number of stages (" + self.cell_name + " ring)",
            "stages   period@25C (ps)   max|NL| (%)   sensitivity (ps/K)",
        ]
        for point in self.points:
            lines.append(
                f"{point.stage_count:6d}   {point.period_at_25c_s * 1e12:15.1f}   "
                f"{point.max_abs_error_percent:11.3f}   "
                f"{point.response.mean_sensitivity() * 1e12:18.4f}"
            )
        lines.append(
            f"non-linearity spread across stage counts: "
            f"{self.nonlinearity_spread_percent():.4f} % of full scale"
        )
        return "\n".join(lines)


def run_stage_count(
    technology: Optional[Technology] = None,
    stage_counts: Sequence[int] = PAPER_STAGE_COUNTS,
    cell_name: str = "INV",
    temperatures_c: Optional[Sequence[float]] = None,
    library: Optional[CellLibrary] = None,
) -> StageCountResult:
    """Run the stage-count study.

    Parameters
    ----------
    technology:
        CMOS technology (0.35 um default).
    stage_counts:
        Ring lengths to evaluate (must all be odd).
    cell_name:
        Library cell used for every stage.
    temperatures_c:
        Sweep grid.
    library:
        Cell library override.
    """
    tech = technology if technology is not None else CMOS035
    lib = library if library is not None else default_library(tech)
    temps = (
        np.asarray(temperatures_c, dtype=float)
        if temperatures_c is not None
        else default_temperature_grid(points=21)
    )
    if not stage_counts:
        raise TechnologyError("at least one stage count is required")
    points: List[StageCountPoint] = []
    for count in stage_counts:
        ring = RingOscillator(lib, RingConfiguration.uniform(cell_name, int(count)))
        response = analytical_response(ring, temps)
        points.append(
            StageCountPoint(
                stage_count=int(count),
                response=response,
                linearity=nonlinearity(response),
                period_at_25c_s=ring.period(25.0),
            )
        )
    return StageCountResult(
        technology_name=tech.name, cell_name=cell_name.upper(), points=points
    )
