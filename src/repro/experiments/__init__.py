"""One module per paper figure / claim, plus the ablations (see DESIGN.md)."""

from .fig1_waveform import Fig1Result, run_fig1
from .fig2_sizing import Fig2Result, run_fig2
from .fig3_cellmix import Fig3Result, run_fig3
from .stage_count import StageCountResult, run_stage_count
from .smart_unit import SmartUnitResult, run_smart_unit
from .baseline_comparison import BaselineComparisonResult, run_baseline_comparison
from .selfheating_study import SelfHeatingStudyResult, run_selfheating_study
from .calibration_study import CalibrationStudyResult, run_calibration_study
from .supply_sensitivity import SupplySensitivityResult, run_supply_sensitivity
from .scaling_study import ScalingStudyResult, run_scaling_study
from .dtm_study import (
    DtmPolicySweepResult,
    DtmStudyResult,
    example_policy_set,
    never_throttle_policy,
    run_dtm_policy_sweep,
    run_dtm_study,
)
from .placement_study import (
    PlacementStudyResult,
    example_workloads,
    run_placement_study,
)
from .thermal_map_study import (
    ThermalMapDensityPoint,
    ThermalMapStudyResult,
    ThermalResolutionPoint,
    ThermalResolutionStudyResult,
    run_thermal_map_study,
    run_thermal_resolution_study,
)
from .runner import ExperimentRegistry, default_registry, run_all

__all__ = [
    "Fig1Result",
    "run_fig1",
    "Fig2Result",
    "run_fig2",
    "Fig3Result",
    "run_fig3",
    "StageCountResult",
    "run_stage_count",
    "SmartUnitResult",
    "run_smart_unit",
    "BaselineComparisonResult",
    "run_baseline_comparison",
    "SelfHeatingStudyResult",
    "run_selfheating_study",
    "CalibrationStudyResult",
    "run_calibration_study",
    "SupplySensitivityResult",
    "run_supply_sensitivity",
    "ScalingStudyResult",
    "run_scaling_study",
    "DtmPolicySweepResult",
    "DtmStudyResult",
    "example_policy_set",
    "never_throttle_policy",
    "run_dtm_policy_sweep",
    "run_dtm_study",
    "ThermalMapDensityPoint",
    "ThermalMapStudyResult",
    "ThermalResolutionPoint",
    "ThermalResolutionStudyResult",
    "run_thermal_map_study",
    "run_thermal_resolution_study",
    "PlacementStudyResult",
    "example_workloads",
    "run_placement_study",
    "ExperimentRegistry",
    "default_registry",
    "run_all",
]
