"""Experiment EXT-PLACEMENT: where should the thermal-map sensors sit?

EXT-THERMALMAP answers how *many* sensors a thermal map needs on a fixed
regular grid; this experiment optimises *where* they go.  A dense grid
of candidate sites is placed on the example processor, every candidate
is scanned through the full smart-sensor chain under a small corpus of
workloads (balanced, core-heavy, cache-heavy), and the
:mod:`repro.optimize.placement` searchers pick the ``k``-site subset
whose inverse-distance reconstruction tracks the true fields best.

The run leans on the batched thermal kernels end to end:

* the true fields of the whole workload corpus come from **one**
  multi-RHS :meth:`~repro.thermal.operator.ThermalOperator.solve_steady_state_multi`
  (block CG with the geometric-multigrid preconditioner on large
  grids), and
* each workload's candidate scan is declared as a
  :class:`~repro.engine.sweep.Sweep` over the bank's ``site`` axis —
  the same machinery EXT-THERMALMAP uses — so the search loop itself
  touches nothing but precomputed arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cells.library import default_library
from ..core.sensor_bank import SensorBank
from ..engine.sweep import Axis, Sweep
from ..optimize.placement import (
    PlacementObjective,
    PlacementResult,
    anneal_placement,
    greedy_placement,
)
from ..oscillator.config import RingConfiguration
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology, TechnologyError
from ..thermal.floorplan import Floorplan, FunctionalBlock
from ..thermal.grid import ThermalGrid
from ..thermal.operator import ThermalOperator
from ..thermal.power import PowerMap

__all__ = [
    "PlacementStudyResult",
    "example_workloads",
    "run_placement_study",
]


def example_workloads() -> List[Tuple[str, Floorplan]]:
    """The workload corpus: the example processor under three phases.

    Placement must serve every phase a DTM controller will see, not just
    one snapshot, so the corpus reweights the example processor's blocks
    into a balanced phase, a compute-bound phase (cores and FPU hot,
    cache quiet) and a memory-bound phase (cache hot, cores throttled).
    """
    phases = [
        ("balanced", {}),
        ("compute", {"core0": 1.5, "core1": 1.4, "fpu": 1.8, "l2_cache": 0.4}),
        ("memory", {"core0": 0.5, "core1": 0.4, "l2_cache": 3.0, "io_ring": 1.6}),
    ]
    workloads: List[Tuple[str, Floorplan]] = []
    for label, scales in phases:
        base = Floorplan.example_processor()
        plan = Floorplan(base.width_mm, base.height_mm, name=f"{base.name}:{label}")
        for block in base.blocks():
            plan.add_block(
                FunctionalBlock(
                    block.name,
                    block.x_mm,
                    block.y_mm,
                    block.width_mm,
                    block.height_mm,
                    block.power_w * scales.get(block.name, 1.0),
                )
            )
        workloads.append((label, plan))
    return workloads


@dataclass(frozen=True)
class PlacementStudyResult:
    """Outcome of the sensor-placement search experiment."""

    technology_name: str
    configuration_label: str
    workload_labels: Tuple[str, ...]
    candidate_count: int
    sensor_count: int
    grid_resolution: int
    solve_method: str
    scan_time_s: float
    greedy: PlacementResult
    annealed: PlacementResult
    evaluations: int

    @property
    def best(self) -> PlacementResult:
        """The better of the two searches (greedy wins ties)."""
        if self.annealed.score.combined_c < self.greedy.score.combined_c:
            return self.annealed
        return self.greedy

    def format_table(self) -> str:
        lines = [
            "EXT-PLACEMENT - sensor-placement search "
            f"({self.sensor_count} of {self.candidate_count} candidate sites, "
            f"workloads: {', '.join(self.workload_labels)})",
            f"ring: {self.configuration_label}, thermal grid "
            f"{self.grid_resolution}^2 ({self.solve_method}), "
            f"selected-scan time {self.scan_time_s * 1e6:.1f}us, "
            f"{self.evaluations} objective evaluations",
            f"{'search':>8s} {'sites':<28s} {'rms mean/worst':>15s} "
            f"{'|hotspot| mean/worst':>21s} {'combined':>9s}",
        ]
        for result in (self.greedy, self.annealed):
            score = result.score
            lines.append(
                f"{result.method:>8s} {','.join(result.selected_names):<28s} "
                f"{score.mean_rms_error_c:>7.3f}/{score.worst_rms_error_c:<6.3f} C "
                f"{score.mean_abs_hotspot_error_c:>10.3f}/{score.worst_abs_hotspot_error_c:<6.3f} C "
                f"{score.combined_c:>7.3f} C"
            )
        improvement = self.greedy.score.combined_c - self.annealed.score.combined_c
        if improvement > 1e-12:
            lines.append(f"annealing improved the greedy placement by {improvement:.4f} C")
        else:
            lines.append("annealing confirmed the greedy placement")
        return "\n".join(lines)


def run_placement_study(
    technology: Optional[Technology] = None,
    configuration_text: str = "2INV+3NAND2",
    candidate_grid: int = 4,
    sensor_count: int = 4,
    grid_resolution: int = 24,
    ambient_c: float = 45.0,
    seed: int = 2005,
    anneal_steps: int = 150,
    hotspot_weight: float = 1.0,
    solve_method: str = "auto",
    calibration_temperatures_c: Tuple[float, float] = (-50.0, 150.0),
    executor: Optional[object] = None,
    max_tile_elements: Optional[int] = None,
) -> PlacementStudyResult:
    """Run the sensor-placement search over the example workload corpus.

    ``candidate_grid`` sets the candidate pool (a ``g x g`` site grid),
    ``sensor_count`` how many of them the multiplexer gets to keep.  The
    corpus' true fields are solved in one multi-RHS pass through the
    cached operator (``solve_method`` routes it: large grids take the
    multigrid block-CG path), every candidate is scanned per workload
    through the sweep engine, then greedy selection and a seeded
    annealing refinement search the subsets.  ``executor`` /
    ``max_tile_elements`` pick the scans' execution backend, as in
    EXT-THERMALMAP.
    """
    if sensor_count > candidate_grid * candidate_grid:
        raise TechnologyError(
            "sensor count cannot exceed the candidate-site count "
            f"({candidate_grid * candidate_grid})"
        )
    tech = technology if technology is not None else CMOS035
    configuration = RingConfiguration.parse(configuration_text)
    library = default_library(tech)

    workloads = example_workloads()
    powers = [
        PowerMap.from_floorplan(plan, nx=grid_resolution, ny=grid_resolution)
        for _, plan in workloads
    ]
    grid = ThermalGrid.for_power_map(powers[0])
    operator = ThermalOperator.for_grid(grid, solve_method)
    true_maps = operator.solve_steady_state_multi(powers, ambient_c)

    candidate_plan = Floorplan.example_processor()
    candidate_plan.add_sensor_grid(int(candidate_grid), int(candidate_grid), prefix="c")
    bank = SensorBank.from_floorplan(tech, candidate_plan, configuration, library=library)
    xs, ys = bank.positions()
    calibration = bank.two_point_calibration(*calibration_temperatures_c)

    # One declarative site scan per workload: every candidate read at
    # its local junction temperature through the measured (quantised)
    # chain, exactly as EXT-THERMALMAP scans its fixed grids.
    estimate_columns = []
    for true_map in true_maps:
        codes = (
            Sweep()
            .over(Axis.site(bank, true_map.sample_points(xs, ys)))
            .observe("code")
            .run(executor=executor, max_tile_elements=max_tile_elements)
            .values
        )
        measured = bank.counter.codes_to_periods(codes)
        estimate_columns.append(calibration.estimate(measured))

    objective = PlacementObjective(
        reference=true_maps[0],
        site_names=bank.names(),
        site_x_mm=xs,
        site_y_mm=ys,
        estimates_c=np.stack(estimate_columns, axis=1),
        true_values_c=np.stack([m.values_c for m in true_maps], axis=0),
        hotspot_weight=hotspot_weight,
    )
    greedy = greedy_placement(objective, sensor_count)
    annealed = anneal_placement(
        objective,
        sensor_count,
        seed=seed,
        steps=anneal_steps,
        initial=greedy.selected_indices,
    )

    return PlacementStudyResult(
        technology_name=tech.name,
        configuration_label=configuration.label(),
        workload_labels=tuple(label for label, _ in workloads),
        candidate_count=bank.site_count,
        sensor_count=int(sensor_count),
        grid_resolution=int(grid_resolution),
        solve_method=operator.method,
        scan_time_s=sensor_count * bank.conversion_time_s,
        greedy=greedy,
        annealed=annealed,
        evaluations=objective.evaluations,
    )
