"""Experiment BASE: proposed sensor versus the prior-art baselines.

The paper's introduction motivates the cell-based ring sensor against
two families of prior art: analogue diode (ΔVBE) sensors such as those
in the Pentium 4 and PowerPC thermal-assist unit, and FPGA ring
oscillators (its reference [5]).  The paper itself gives no quantitative
comparison, so this experiment defines one on the axes the introduction
argues about:

* accuracy over -50..150 C after the calibration each sensor family
  would realistically receive (two-point for the ring sensors, nominal
  transfer for the diode chain),
* intrinsic linearity of the sensing element,
* whether full-custom analogue design is required, and
* a first-order area figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.linearity import nonlinearity
from ..baselines.diode_sensor import DiodeSensorConfig, DiodeTemperatureSensor
from ..baselines.fpga_ro import FpgaRingConfig, fpga_ring_oscillator
from ..core.readout import ReadoutConfig
from ..core.sensor import SmartTemperatureSensor
from ..oscillator.config import RingConfiguration
from ..oscillator.period import analytical_response, default_temperature_grid
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology

__all__ = ["BaselineEntry", "BaselineComparisonResult", "run_baseline_comparison"]


@dataclass(frozen=True)
class BaselineEntry:
    """One row of the comparison table."""

    name: str
    sensing_principle: str
    worst_error_c: float
    nonlinearity_percent: float
    requires_analog_design: bool
    area_um2: float

    def as_row(self) -> str:
        analog = "yes" if self.requires_analog_design else "no"
        return (
            f"{self.name:24s} {self.sensing_principle:18s} "
            f"{self.worst_error_c:12.3f} {self.nonlinearity_percent:12.3f} "
            f"{analog:>10s} {self.area_um2:12.0f}"
        )


@dataclass(frozen=True)
class BaselineComparisonResult:
    """Outcome of the baseline-comparison experiment."""

    technology_name: str
    entries: List[BaselineEntry]
    temperatures_c: np.ndarray

    def entry(self, name: str) -> BaselineEntry:
        for candidate in self.entries:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no comparison entry named {name!r}")

    def proposed(self) -> BaselineEntry:
        return self.entry("proposed cell-mix ring")

    def format_table(self) -> str:
        header = (
            f"{'sensor':24s} {'principle':18s} {'worst err (C)':>12s} "
            f"{'|NL| (%)':>12s} {'analog?':>10s} {'area (um2)':>12s}"
        )
        lines = ["BASE - sensor family comparison (-50..150 C)", header]
        lines.extend(entry.as_row() for entry in self.entries)
        return "\n".join(lines)


def run_baseline_comparison(
    technology: Optional[Technology] = None,
    proposed_configuration: str = "2INV+3NAND2",
    temperatures_c: Optional[Sequence[float]] = None,
    readout: ReadoutConfig = ReadoutConfig(),
) -> BaselineComparisonResult:
    """Run the baseline comparison.

    Parameters
    ----------
    technology:
        CMOS technology for the ring sensors.
    proposed_configuration:
        The cell mix representing the paper's proposal.
    temperatures_c:
        Evaluation sweep.
    readout:
        Shared readout configuration for the ring sensors.
    """
    tech = technology if technology is not None else CMOS035
    temps = (
        np.asarray(temperatures_c, dtype=float)
        if temperatures_c is not None
        else default_temperature_grid(points=21)
    )
    entries: List[BaselineEntry] = []

    # Proposed cell-based smart sensor.
    configuration = RingConfiguration.parse(proposed_configuration)
    proposed = SmartTemperatureSensor.from_configuration(
        tech, configuration, readout=readout, name="proposed"
    )
    proposed.calibrate_two_point(float(temps[0]), float(temps[-1]))
    proposed_response = proposed.temperature_response(temps)
    entries.append(
        BaselineEntry(
            name="proposed cell-mix ring",
            sensing_principle="gate delay",
            worst_error_c=proposed.worst_case_error_c(temps),
            nonlinearity_percent=nonlinearity(proposed_response).max_abs_error_percent,
            requires_analog_design=False,
            area_um2=proposed.ring.area_um2(),
        )
    )

    # Inverter-only standard-cell ring (no cell-mix optimisation).
    plain = SmartTemperatureSensor.from_configuration(
        tech, RingConfiguration.uniform("INV", 5), readout=readout, name="plain_inv"
    )
    plain.calibrate_two_point(float(temps[0]), float(temps[-1]))
    plain_response = plain.temperature_response(temps)
    entries.append(
        BaselineEntry(
            name="inverter-only ring",
            sensing_principle="gate delay",
            worst_error_c=plain.worst_case_error_c(temps),
            nonlinearity_percent=nonlinearity(plain_response).max_abs_error_percent,
            requires_analog_design=False,
            area_um2=plain.ring.area_um2(),
        )
    )

    # FPGA-style ring (reference [5]).
    fpga_ring = fpga_ring_oscillator(tech, FpgaRingConfig())
    fpga_sensor = SmartTemperatureSensor(fpga_ring, readout=readout, name="fpga")
    fpga_sensor.calibrate_two_point(float(temps[0]), float(temps[-1]))
    fpga_response = analytical_response(fpga_ring, temps)
    entries.append(
        BaselineEntry(
            name="FPGA-style ring [5]",
            sensing_principle="gate delay",
            worst_error_c=fpga_sensor.worst_case_error_c(temps),
            nonlinearity_percent=nonlinearity(fpga_response).max_abs_error_percent,
            requires_analog_design=False,
            area_um2=fpga_ring.area_um2(),
        )
    )

    # Analogue diode (delta-VBE) sensor.
    diode = DiodeTemperatureSensor(DiodeSensorConfig())
    diode_errors = diode.measurement_errors(temps)
    # The diode's intrinsic characteristic is delta-VBE vs T, which is
    # almost perfectly linear; report the residual of its own transfer.
    diode_voltage = np.asarray([diode.ptat_voltage(float(t)) for t in temps])
    span = diode_voltage[-1] - diode_voltage[0]
    line = np.interp(temps, [temps[0], temps[-1]], [diode_voltage[0], diode_voltage[-1]])
    diode_nl = float(np.max(np.abs(diode_voltage - line)) / span * 100.0)
    entries.append(
        BaselineEntry(
            name="diode delta-VBE sensor",
            sensing_principle="bipolar junction",
            worst_error_c=float(np.max(np.abs(diode_errors))),
            nonlinearity_percent=diode_nl,
            requires_analog_design=True,
            area_um2=20000.0,  # typical analogue sensor + ADC macro footprint
        )
    )

    return BaselineComparisonResult(
        technology_name=tech.name, entries=entries, temperatures_c=temps
    )
