"""Experiment FIG2: non-linearity versus PMOS/NMOS width ratio.

Reproduces the paper's Fig. 2: the non-linearity error curves of a
5-stage inverter ring for several Wp/Wn ratios over -50 C .. 150 C, plus
the claim that an adequate ratio pushes the worst-case error below
roughly 0.2 % of full scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.linearity import NonlinearityResult
from ..engine.batch import BatchEvaluator
from ..oscillator.period import paper_temperature_grid
from ..optimize.sizing import (
    PAPER_FIG2_RATIOS,
    SizingPoint,
    SizingSweepResult,
)
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology

__all__ = ["Fig2Result", "run_fig2"]


@dataclass(frozen=True)
class Fig2Result:
    """Outcome of the Fig. 2 reproduction."""

    technology_name: str
    sweep: SizingSweepResult
    optimum: SizingPoint
    temperatures_c: np.ndarray

    def error_curves_percent(self) -> Dict[float, np.ndarray]:
        """Non-linearity error (percent) versus temperature per ratio."""
        return {
            point.width_ratio: point.linearity.error_percent for point in self.sweep.points
        }

    def best_ratio(self) -> float:
        return self.sweep.best().width_ratio

    def best_max_error_percent(self) -> float:
        return self.sweep.best().max_abs_error_percent

    def format_table(self) -> str:
        """Text table in the shape of the paper's figure data."""
        temps = self.temperatures_c
        header = "ratio   " + "".join(f"{t:>8.0f}C" for t in temps) + "   max|NL|%"
        lines = ["FIG2 - non-linearity error vs Wp/Wn ratio (5-stage inverter ring)", header]
        for point in self.sweep.points:
            errors = point.linearity.error_percent
            row = f"{point.width_ratio:5.2f}  " + "".join(f"{e:+9.3f}" for e in errors)
            row += f"   {point.max_abs_error_percent:8.3f}"
            lines.append(row)
        lines.append(
            f"continuous optimum: ratio={self.optimum.width_ratio:.2f}, "
            f"max|NL|={self.optimum.max_abs_error_percent:.3f} %"
        )
        return "\n".join(lines)


def run_fig2(
    technology: Optional[Technology] = None,
    ratios: Sequence[float] = PAPER_FIG2_RATIOS,
    temperatures_c: Optional[Sequence[float]] = None,
    stage_count: int = 5,
    evaluator: Optional[BatchEvaluator] = None,
) -> Fig2Result:
    """Run the Fig. 2 experiment.

    Parameters
    ----------
    technology:
        CMOS technology (0.35 um default).
    ratios:
        Wp/Wn ratios to report (the paper's four by default).
    temperatures_c:
        Evaluation temperatures; the paper's nine-point grid by default.
    stage_count:
        Ring length.
    evaluator:
        Batch engine to run the sweeps through; the vectorized engine by
        default (``BatchEvaluator(vectorized=False)`` reproduces the
        scalar reference path).  The vectorized sweep is declared on the
        named ``width_ratio`` x ``temperature`` axes of the sweep API
        (see :mod:`repro.engine.sweep`); this experiment keeps the
        engine façade so both evaluation modes stay selectable.
    """
    tech = technology if technology is not None else CMOS035
    engine = evaluator if evaluator is not None else BatchEvaluator()
    temps = (
        np.asarray(temperatures_c, dtype=float)
        if temperatures_c is not None
        else paper_temperature_grid()
    )
    sweep = engine.sweep_width_ratio(
        tech, ratios=ratios, stage_count=stage_count, temperatures_c=temps
    )
    optimum = engine.optimize_width_ratio(
        tech, stage_count=stage_count, temperatures_c=temps
    )
    return Fig2Result(
        technology_name=tech.name,
        sweep=sweep,
        optimum=optimum,
        temperatures_c=temps,
    )
