"""Experiment ABL-SELFHEAT: why the smart unit disables its oscillator.

The paper lists "the possibility to disable the oscillator in order to
minimise self-heating" as a feature of the smart unit but does not
quantify it.  This ablation does: it compares the temperature error
introduced by the sensor's own dissipation when the ring free-runs
versus when it is duty-cycled by the measurement controller, using the
die thermal model and the ring's computed dynamic power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.readout import ReadoutConfig
from ..engine.sweep import Axis, Sweep
from ..oscillator.config import RingConfiguration
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology
from ..thermal.floorplan import Floorplan
from ..thermal.power import PowerMap
from ..thermal.selfheating import SelfHeatingReport, duty_cycle_study

__all__ = ["SelfHeatingStudyResult", "run_selfheating_study"]


@dataclass(frozen=True)
class SelfHeatingStudyResult:
    """Outcome of the self-heating ablation."""

    technology_name: str
    configuration_label: str
    oscillator_power_w: float
    reports: List[SelfHeatingReport]
    duty_cycle_when_sampled_1khz: float

    def free_running_error_c(self) -> float:
        """Self-heating error with the oscillator always on."""
        return max(r.temperature_rise_c for r in self.reports if r.duty_cycle == 1.0)

    def duty_cycled_error_c(self) -> float:
        """Self-heating error at the smart unit's 1 kHz sampling duty cycle."""
        duties = np.asarray([r.duty_cycle for r in self.reports])
        rises = np.asarray([r.temperature_rise_c for r in self.reports])
        return float(np.interp(self.duty_cycle_when_sampled_1khz, duties[::-1], rises[::-1]))

    def improvement_factor(self) -> float:
        """Error reduction from duty cycling the oscillator."""
        cycled = self.duty_cycled_error_c()
        if cycled <= 0.0:
            return float("inf")
        return self.free_running_error_c() / cycled

    def format_table(self) -> str:
        lines = [
            "ABL-SELFHEAT - oscillator self-heating vs measurement duty cycle",
            f"ring: {self.configuration_label}, oscillator power: "
            f"{self.oscillator_power_w * 1e3:.3f} mW",
            f"{'duty cycle':>12s} {'self-heating error (C)':>24s}",
        ]
        for report in self.reports:
            lines.append(
                f"{report.duty_cycle:12.4f} {report.temperature_rise_c:24.4f}"
            )
        lines.append(
            f"duty cycling at 1 kHz sampling reduces the error by "
            f"{self.improvement_factor():.0f}x"
        )
        return "\n".join(lines)


def run_selfheating_study(
    technology: Optional[Technology] = None,
    configuration_text: str = "2INV+3NAND2",
    readout: ReadoutConfig = ReadoutConfig(),
    duty_cycles: Sequence[float] = (1.0, 0.5, 0.2, 0.1, 0.01, 0.001),
    sensor_location_mm: Sequence[float] = (2.0, 6.0),
    grid_resolution: int = 24,
    measurement_rate_hz: float = 1000.0,
    scalar: bool = False,
) -> SelfHeatingStudyResult:
    """Run the self-heating ablation.

    The sensor is placed inside the hottest core of the example
    floorplan (where a thermal-management system would put it) and its
    dynamic power at the local temperature is injected into the thermal
    model at that spot, scaled by each duty cycle.

    ``scalar=True`` runs one steady-state thermal solve per duty cycle
    (the reference path); the default exploits the thermal network's
    linearity and covers the whole duty-cycle sweep with one multi-RHS
    solve against the shared :class:`~repro.thermal.operator.ThermalOperator`
    factorization (see :func:`repro.thermal.selfheating.duty_cycle_study`).
    """
    tech = technology if technology is not None else CMOS035
    configuration = RingConfiguration.parse(configuration_text)

    floorplan = Floorplan.example_processor()
    power_map = PowerMap.from_floorplan(floorplan, nx=grid_resolution, ny=grid_resolution)
    # A single ring is tiny; the study models the whole sensor macro
    # (ring + readout counters + clock buffering) as ten rings' worth of
    # switching, a representative figure for a 3.3 V implementation.
    # The ring's free-running dissipation comes from the sweep engine's
    # ``power`` observable evaluated at the hot operating point.
    ring_power = (
        Sweep(technology=tech, configuration=configuration)
        .over(Axis.temperature([100.0]))
        .observe("power")
        .run()
        .item()
    )
    oscillator_power = ring_power * 10.0

    reports = duty_cycle_study(
        power_map,
        float(sensor_location_mm[0]),
        float(sensor_location_mm[1]),
        oscillator_power,
        duty_cycles=tuple(sorted(set(float(d) for d in duty_cycles), reverse=True)),
        scalar=scalar,
    )
    duty_1khz = min(1.0, measurement_rate_hz * readout.conversion_time_s)
    return SelfHeatingStudyResult(
        technology_name=tech.name,
        configuration_label=configuration.label(),
        oscillator_power_w=oscillator_power,
        reports=list(reports),
        duty_cycle_when_sampled_1khz=duty_1khz,
    )
