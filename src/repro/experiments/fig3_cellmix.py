"""Experiment FIG3: non-linearity of different cell-mix configurations.

Reproduces the paper's Fig. 3: the non-linearity error curves of 5-stage
rings built from different mixes of standard library gates (inverters,
NAND2/NAND3, NOR2), evaluated over -50 C .. 150 C.  The headline claims
checked by the bench:

* the configurations bracket the inverter-only ring — some mixes are
  better, some worse, so the mix is a genuine design knob;
* an adequate mix reduces the error to a level comparable with the
  transistor-level optimum of Fig. 2 — without leaving the standard-cell
  library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cells.library import CellLibrary, default_library
from ..engine.batch import BatchEvaluator
from ..optimize.cellmix import (
    CellMixCandidate,
    CellMixSearchResult,
    evaluate_configuration_bank,
)
from ..oscillator.bank import ConfigurationBank
from ..oscillator.config import PAPER_FIG3_CONFIGURATIONS, RingConfiguration
from ..oscillator.period import paper_temperature_grid
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology

__all__ = ["Fig3Result", "run_fig3"]


@dataclass(frozen=True)
class Fig3Result:
    """Outcome of the Fig. 3 reproduction."""

    technology_name: str
    candidates: Dict[str, CellMixCandidate]
    search: CellMixSearchResult
    temperatures_c: np.ndarray

    def error_curves_percent(self) -> Dict[str, np.ndarray]:
        """Non-linearity error (percent) versus temperature per configuration."""
        return {
            label: candidate.linearity.error_percent
            for label, candidate in self.candidates.items()
        }

    def inverter_reference(self) -> CellMixCandidate:
        """The plain 5-inverter ring all mixes are compared against."""
        for label, candidate in self.candidates.items():
            if candidate.configuration.is_uniform() and candidate.configuration.stages[0] == "INV":
                return candidate
        raise KeyError("the configuration set does not include an inverter-only ring")

    def best_paper_configuration(self) -> CellMixCandidate:
        """Best of the paper's named configurations."""
        return min(self.candidates.values(), key=lambda c: c.max_abs_error_percent)

    def best_searched_configuration(self) -> CellMixCandidate:
        """Best configuration found by the exhaustive mix search."""
        return self.search.best()

    def format_table(self) -> str:
        """Text table in the shape of the paper's figure data."""
        temps = self.temperatures_c
        header = "configuration    " + "".join(f"{t:>8.0f}C" for t in temps) + "   max|NL|%"
        lines = [
            "FIG3 - non-linearity error vs ring configuration (5 stages, standard cells)",
            header,
        ]
        for label, candidate in self.candidates.items():
            errors = candidate.linearity.error_percent
            row = f"{label:15s}  " + "".join(f"{e:+9.3f}" for e in errors)
            row += f"   {candidate.max_abs_error_percent:8.3f}"
            lines.append(row)
        best = self.best_searched_configuration()
        lines.append(
            f"exhaustive-search optimum: {best.label} with max|NL|="
            f"{best.max_abs_error_percent:.3f} % ({self.search.evaluated_count} mixes evaluated)"
        )
        return "\n".join(lines)


def run_fig3(
    technology: Optional[Technology] = None,
    configurations: Optional[Dict[str, RingConfiguration]] = None,
    temperatures_c: Optional[Sequence[float]] = None,
    library: Optional[CellLibrary] = None,
    run_search: bool = True,
    evaluator: Optional[BatchEvaluator] = None,
) -> Fig3Result:
    """Run the Fig. 3 experiment.

    Parameters
    ----------
    technology:
        CMOS technology (0.35 um default).
    configurations:
        Named configurations to report; the paper's reconstructed set by
        default.
    temperatures_c:
        Evaluation temperatures (the paper's nine-point grid by default).
    library:
        Cell library (the default X1 library of the technology when
        omitted).
    run_search:
        Also run the exhaustive mix search to locate the global optimum
        over INV/NAND/NOR mixes.
    evaluator:
        Batch engine to run the evaluations through; the vectorized
        engine by default.  In vectorized mode the named configurations
        stack into one
        :class:`~repro.oscillator.bank.ConfigurationBank` — the
        configuration axis of the sweep API — and evaluate as a single
        ``(config x temperature)`` broadcast; scalar mode keeps the
        per-configuration oracle loop.
    """
    tech = technology if technology is not None else CMOS035
    lib = library if library is not None else default_library(tech)
    engine = evaluator if evaluator is not None else BatchEvaluator()
    configs = configurations if configurations is not None else dict(PAPER_FIG3_CONFIGURATIONS)
    temps = (
        np.asarray(temperatures_c, dtype=float)
        if temperatures_c is not None
        else paper_temperature_grid()
    )
    if engine.vectorized:
        # The configuration axis of the sweep API: all named rings stack
        # into one bank and evaluate as a single (config x temperature)
        # broadcast — the declarative equivalent is
        # Sweep(library=lib).over(Axis.configuration(configs))
        #                   .over(Axis.temperature(temps)).run().
        bank = ConfigurationBank(lib, configs)
        candidates = dict(
            zip(bank.labels, evaluate_configuration_bank(bank, temps))
        )
    else:
        candidates = {
            label: engine.evaluate_configuration(lib, configuration, temps)
            for label, configuration in configs.items()
        }
    if run_search:
        search = engine.search_cell_mix(lib, stage_count=5, temperatures_c=temps, top_k=10)
    else:
        ranked = sorted(candidates.values(), key=lambda c: c.max_abs_error_percent)
        search = CellMixSearchResult(candidates=ranked, evaluated_count=len(ranked))
    return Fig3Result(
        technology_name=tech.name,
        candidates=candidates,
        search=search,
        temperatures_c=temps,
    )
