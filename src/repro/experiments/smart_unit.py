"""Experiment SMART: the smart-unit features described in Section 3.

The paper's final section describes the smart thermal-management unit:
digital period-to-temperature conversion, the ability to disable the
oscillator to minimise self-heating, a measurement-in-progress output,
and multiplexed readout of distributed rings for thermal mapping.  The
paper gives no quantitative evaluation of the unit, so this experiment
defines the quantitative checks the reproduction asserts:

* the digital transfer function is monotonic and, after two-point
  calibration, reports temperature within the quantisation +
  non-linearity budget over -50..150 C;
* the busy flag and oscillator-enable behave per the FSM contract and
  the measurement duty cycle (hence self-heating) falls with the
  measurement rate;
* a multiplexed bank of sensors on a realistic floorplan reconstructs
  the die's thermal map with a hotspot error of a few degrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..analysis.resolution import ResolutionReport, resolution_report
from ..core.mapping import ThermalMonitor, ThermalMonitorReport
from ..core.readout import ReadoutConfig
from ..core.sensor import SensorTransferFunction, SmartTemperatureSensor
from ..oscillator.config import RingConfiguration
from ..oscillator.period import default_temperature_grid
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology
from ..thermal.floorplan import Floorplan

__all__ = ["SmartUnitResult", "run_smart_unit"]


@dataclass(frozen=True)
class SmartUnitResult:
    """Outcome of the smart-unit experiment."""

    technology_name: str
    configuration_label: str
    transfer: SensorTransferFunction
    resolution: ResolutionReport
    worst_measurement_error_c: float
    conversion_time_s: float
    duty_cycle_at_1khz: float
    average_power_at_1khz_w: float
    free_running_power_w: float
    mapping_report: ThermalMonitorReport
    sensor_count: int

    def power_saving_factor(self) -> float:
        """Free-running power over duty-cycled power at 1 kHz sampling."""
        if self.average_power_at_1khz_w <= 0.0:
            return float("inf")
        return self.free_running_power_w / self.average_power_at_1khz_w

    def format_summary(self) -> str:
        report = self.mapping_report
        lines = [
            "SMART - smart temperature sensor unit",
            f"  technology                : {self.technology_name}",
            f"  ring configuration        : {self.configuration_label}",
            f"  code span over -50..150 C : {self.transfer.codes[0]:.0f} -> {self.transfer.codes[-1]:.0f}",
            f"  counts per kelvin         : {self.transfer.codes_per_kelvin():.2f}",
            f"  quantisation resolution   : {self.resolution.temperature_resolution_c:.3f} C/LSB",
            f"  counter bits required     : {self.resolution.bits_required}",
            f"  conversion time           : {self.conversion_time_s * 1e6:.1f} us",
            f"  worst calibrated error    : {self.worst_measurement_error_c:.3f} C",
            f"  duty cycle @ 1 kHz rate   : {self.duty_cycle_at_1khz * 100:.2f} %",
            f"  power saving vs free-run  : {self.power_saving_factor():.0f}x",
            f"  sensors multiplexed       : {self.sensor_count}",
            f"  die gradient (true)       : {report.true_map.gradient_c():.2f} C",
            f"  worst site error          : {report.worst_site_error_c():.3f} C",
            f"  hotspot estimate error    : {report.hotspot_error_c():+.2f} C",
            f"  map RMS error             : {report.map_rms_error_c():.2f} C",
        ]
        return "\n".join(lines)


def run_smart_unit(
    technology: Optional[Technology] = None,
    configuration_text: str = "2INV+3NAND2",
    readout: ReadoutConfig = ReadoutConfig(),
    temperatures_c: Optional[Sequence[float]] = None,
    sensor_grid: int = 3,
    measurement_rate_hz: float = 1000.0,
) -> SmartUnitResult:
    """Run the smart-unit experiment.

    Parameters
    ----------
    technology:
        CMOS technology (0.35 um default).
    configuration_text:
        Ring configuration for every sensor (a linear cell mix from the
        Fig. 3 study by default).
    readout:
        Counter readout configuration.
    temperatures_c:
        Sweep for the transfer-function characterisation.
    sensor_grid:
        The thermal-mapping study places ``sensor_grid x sensor_grid``
        sensors on the example floorplan.
    measurement_rate_hz:
        Sampling rate used for the duty-cycle / power computation.
    """
    tech = technology if technology is not None else CMOS035
    temps = (
        np.asarray(temperatures_c, dtype=float)
        if temperatures_c is not None
        else default_temperature_grid(points=21)
    )
    configuration = RingConfiguration.parse(configuration_text)

    # Single-sensor characterisation.
    sensor = SmartTemperatureSensor.from_configuration(
        tech, configuration, readout=readout, name="dut"
    )
    sensor.calibrate_two_point(low_temperature_c=float(temps[0]), high_temperature_c=float(temps[-1]))
    transfer = sensor.transfer_function(temps)
    response = sensor.temperature_response(temps)
    resolution = resolution_report(response, readout.window_s)
    worst_error = sensor.worst_case_error_c(temps)
    reading = sensor.measure(85.0)
    duty = min(1.0, measurement_rate_hz * readout.conversion_time_s)
    average_power = sensor.average_power_w(85.0, measurement_rate_hz)
    free_running = sensor.measurement_power_w(85.0)

    # Multiplexed thermal mapping on the example floorplan.
    floorplan = Floorplan.example_processor()
    floorplan.add_sensor_grid(sensor_grid, sensor_grid)
    monitor = ThermalMonitor(tech, floorplan, configuration, readout=readout)
    monitor.calibrate(low_temperature_c=float(temps[0]), high_temperature_c=float(temps[-1]))
    mapping_report = monitor.scan()

    return SmartUnitResult(
        technology_name=tech.name,
        configuration_label=configuration.label(),
        transfer=transfer,
        resolution=resolution,
        worst_measurement_error_c=worst_error,
        conversion_time_s=reading.conversion_time_s,
        duty_cycle_at_1khz=duty,
        average_power_at_1khz_w=average_power,
        free_running_power_w=free_running,
        mapping_report=mapping_report,
        sensor_count=sensor_grid * sensor_grid,
    )
