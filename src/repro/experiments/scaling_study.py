"""Experiment EXT-SCALING: the sensor across technology nodes.

The paper's introduction motivates thermal monitoring with technology
scaling (junction temperatures rise node over node).  This extension
asks the follow-up question: does the *sensor itself* keep working as
the technology scales?  It evaluates the same cell-mix sensor on the
0.35 / 0.25 / 0.18 / 0.13 um nodes and reports sensitivity, linearity
and the supply-scaling headroom, plus the power-density trend that
drives the motivation in the first place.

The node loop is declared through the sweep engine's ``technology``
axis (one characterisation sweep, one 25 C spot sweep), with the
original hand-written per-node loop retained as its bitwise oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.linearity import nonlinearity
from ..analysis.sensitivity import sensitivity_report
from ..cells.library import default_library
from ..engine.sweep import Axis, Sweep
from ..oscillator.config import RingConfiguration
from ..oscillator.period import TemperatureResponse, default_temperature_grid
from ..tech.libraries import CMOS013, CMOS018, CMOS025, CMOS035
from ..tech.parameters import Technology
from ..tech.scaling import ScalingRules, power_density_scaling_factor

__all__ = ["NodePoint", "ScalingStudyResult", "run_scaling_study"]

DEFAULT_NODES = (CMOS035, CMOS025, CMOS018, CMOS013)


@dataclass(frozen=True)
class NodePoint:
    """Sensor figures of merit on one technology node."""

    technology_name: str
    feature_size_um: float
    vdd: float
    period_at_25c_s: float
    relative_sensitivity_per_k: float
    max_nonlinearity_percent: float
    reoptimized_label: Optional[str] = None
    reoptimized_nonlinearity_percent: Optional[float] = None
    #: Free-running sensor dynamic power at 25 C (the ``power``
    #: observable) — the node-over-node trend of the sensor's own
    #: self-heating budget.
    sensor_power_at_25c_w: float = 0.0

    @property
    def frequency_at_25c_hz(self) -> float:
        return 1.0 / self.period_at_25c_s


@dataclass(frozen=True)
class ScalingStudyResult:
    """Outcome of the technology-scaling extension experiment."""

    configuration_label: str
    points: List[NodePoint]
    power_density_trend: float

    def sensitivity_retained(self) -> float:
        """Relative sensitivity at the smallest node over the largest node."""
        return (
            self.points[-1].relative_sensitivity_per_k
            / self.points[0].relative_sensitivity_per_k
        )

    def all_nodes_usable(self, nonlinearity_limit_percent: float = 1.0) -> bool:
        """Whether the chosen mix stays acceptably linear on every node."""
        return all(
            point.max_nonlinearity_percent < nonlinearity_limit_percent
            for point in self.points
        )

    def format_table(self) -> str:
        lines = [
            f"EXT-SCALING - sensor ({self.configuration_label}) across technology nodes",
            f"{'node':10s} {'feature':>8s} {'VDD':>6s} {'period@25C':>12s} "
            f"{'rel. sens.':>12s} {'max|NL|':>9s} {'power@25C':>11s}   re-optimised mix",
        ]
        for point in self.points:
            reopt = ""
            if point.reoptimized_label is not None:
                reopt = (
                    f"   {point.reoptimized_label} "
                    f"({point.reoptimized_nonlinearity_percent:.3f}%)"
                )
            lines.append(
                f"{point.technology_name:10s} {point.feature_size_um:7.2f}u "
                f"{point.vdd:6.2f} {point.period_at_25c_s * 1e12:10.1f}ps "
                f"{point.relative_sensitivity_per_k * 100:10.3f}%/K "
                f"{point.max_nonlinearity_percent:8.3f}% "
                f"{point.sensor_power_at_25c_w * 1e6:8.1f}uW" + reopt
            )
        lines.append(
            "power density trend of the constant-voltage-leaning scaling that "
            f"motivates the paper: x{self.power_density_trend:.1f} per 2x shrink"
        )
        return "\n".join(lines)


def _node_matrices(
    configuration: RingConfiguration,
    nodes: Sequence[Technology],
    temps: np.ndarray,
    use_technology_axis: bool,
) -> tuple:
    """``(periods[N, T], periods_25c[N], powers_25c[N])`` for the node set.

    The declarative form runs the whole study as two sweeps with a
    ``technology`` axis; the loop form is the original hand-written
    per-node loop, retained as the oracle the axis lowering is tested
    bitwise against (``tests/test_experiments_extensions.py``).
    """
    if use_technology_axis:
        tech_axis = Axis.technology(nodes)
        periods = (
            Sweep(configuration=configuration)
            .over(tech_axis)
            .over(Axis.temperature(temps))
            .run()
            .values
        )
        spot = (
            Sweep(configuration=configuration)
            .over(tech_axis)
            .over(Axis.temperature([25.0]))
        )
        periods_25c = spot.run().values[:, 0]
        powers_25c = spot.observe("power").run().values[:, 0]
        return periods, periods_25c, powers_25c
    rows = []
    periods_25c_list = []
    powers_25c_list = []
    for tech in nodes:
        library = default_library(tech)
        rows.append(
            Sweep(library=library, configuration=configuration)
            .over(Axis.temperature(temps))
            .run()
            .values
        )
        spot = Sweep(library=library, configuration=configuration).over(
            Axis.temperature([25.0])
        )
        periods_25c_list.append(spot.run().item())
        powers_25c_list.append(spot.observe("power").run().item())
    return (
        np.stack(rows),
        np.asarray(periods_25c_list, dtype=float),
        np.asarray(powers_25c_list, dtype=float),
    )


def run_scaling_study(
    configuration_text: str = "2INV+3NAND2",
    nodes: Sequence[Technology] = DEFAULT_NODES,
    temperatures_c: Optional[Sequence[float]] = None,
    reoptimize: bool = False,
    use_technology_axis: bool = True,
) -> ScalingStudyResult:
    """Evaluate one ring configuration on several technology nodes.

    With ``reoptimize=True`` the cell-mix search is rerun on every node,
    showing that the paper's *method* ports across nodes even when the
    particular mix chosen for 0.35 um does not stay optimal.

    The node loop is declared, not hand-written: by default the
    characterisation is one ``period`` sweep over a ``technology`` axis
    stacked on the temperature grid, plus one technology x [25 C] spot
    sweep for the ``period``/``power`` observables — so the whole study
    serializes, content-addresses and caches like any other sweep.
    ``use_technology_axis=False`` runs the original per-node loop
    instead; the two are bitwise identical, and the loop form is kept
    as the oracle that pins the axis lowering.
    """
    configuration = RingConfiguration.parse(configuration_text)
    temps = (
        np.asarray(temperatures_c, dtype=float)
        if temperatures_c is not None
        else default_temperature_grid(points=21)
    )
    periods, periods_25c, powers_25c = _node_matrices(
        configuration, nodes, temps, use_technology_axis
    )
    points: List[NodePoint] = []
    for index, tech in enumerate(nodes):
        response = TemperatureResponse(configuration.label(), temps, periods[index])
        reopt_label = None
        reopt_nl = None
        if reoptimize:
            from ..optimize.cellmix import search_cell_mix

            best = search_cell_mix(
                default_library(tech), stage_count=configuration.stage_count,
                temperatures_c=temps, top_k=1,
            ).best()
            reopt_label = best.label
            reopt_nl = best.max_abs_error_percent
        points.append(
            NodePoint(
                technology_name=tech.name,
                feature_size_um=tech.feature_size_um,
                vdd=tech.vdd,
                period_at_25c_s=float(periods_25c[index]),
                relative_sensitivity_per_k=sensitivity_report(response).relative_sensitivity_per_k,
                max_nonlinearity_percent=nonlinearity(response).max_abs_error_percent,
                reoptimized_label=reopt_label,
                reoptimized_nonlinearity_percent=reopt_nl,
                sensor_power_at_25c_w=float(powers_25c[index]),
            )
        )
    # The generalised-scaling power-density factor for a 2x shrink with the
    # partial voltage scaling real products used (the paper's motivation).
    trend = power_density_scaling_factor(
        ScalingRules(dimension_factor=2.0, voltage_factor=1.4)
    )
    return ScalingStudyResult(
        configuration_label=configuration.label(),
        points=points,
        power_density_trend=trend,
    )
