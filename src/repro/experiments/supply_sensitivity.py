"""Experiment EXT-SUPPLY: supply-voltage cross-sensitivity of the sensor.

Not in the paper — an extension every user of a delay-based sensor needs:
how much supply noise can the sensor tolerate before it corrupts the
temperature reading by more than the non-linearity budget, and does the
cell-mix choice change that trade-off?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.supply import SupplySensitivityReport, supply_sensitivity
from ..oscillator.config import PAPER_FIG3_CONFIGURATIONS, RingConfiguration
from ..tech.libraries import CMOS035
from ..tech.parameters import Technology

__all__ = ["SupplySensitivityResult", "run_supply_sensitivity"]


@dataclass(frozen=True)
class SupplySensitivityResult:
    """Outcome of the supply-sensitivity extension experiment."""

    technology_name: str
    temperature_c: float
    reports: Dict[str, SupplySensitivityReport]
    error_budget_c: float

    def worst_configuration(self) -> str:
        """Configuration most sensitive to supply noise."""
        return max(self.reports, key=lambda k: self.reports[k].kelvin_per_millivolt)

    def best_configuration(self) -> str:
        """Configuration least sensitive to supply noise."""
        return min(self.reports, key=lambda k: self.reports[k].kelvin_per_millivolt)

    def format_table(self) -> str:
        lines = [
            "EXT-SUPPLY - supply-voltage cross-sensitivity "
            f"(at {self.temperature_c:.0f} C, {self.error_budget_c:.1f} C budget)",
            f"{'configuration':15s} {'K per mV':>10s} {'allowed supply error (mV)':>28s}",
        ]
        for label, report in self.reports.items():
            lines.append(
                f"{label:15s} {report.kelvin_per_millivolt:10.4f} "
                f"{report.supply_error_budget_mv(self.error_budget_c):28.1f}"
            )
        return "\n".join(lines)


def run_supply_sensitivity(
    technology: Optional[Technology] = None,
    configurations: Optional[Dict[str, RingConfiguration]] = None,
    temperature_c: float = 85.0,
    error_budget_c: float = 1.0,
    scalar: bool = False,
) -> SupplySensitivityResult:
    """Run the supply-sensitivity study over the Fig. 3 configurations.

    The default path declares each finite difference as a named-axis
    sweep (the ``supply`` axis of :mod:`repro.engine.sweep`, lowered
    onto a stacked two-supply population); ``scalar=True`` routes every
    configuration through the original rebuild-per-operating-point loop
    instead (see :func:`repro.analysis.supply.supply_sensitivity`).
    """
    tech = technology if technology is not None else CMOS035
    configs = configurations if configurations is not None else dict(PAPER_FIG3_CONFIGURATIONS)
    reports = {
        label: supply_sensitivity(
            tech, configuration, temperature_c=temperature_c, scalar=scalar
        )
        for label, configuration in configs.items()
    }
    return SupplySensitivityResult(
        technology_name=tech.name,
        temperature_c=temperature_c,
        reports=reports,
        error_budget_c=error_budget_c,
    )
