"""Cell-level optimisation: choosing the mix of library gates (Section 3).

This is the paper's main design method: instead of resizing transistors
(not possible with a fixed standard-cell library), the designer chooses
*which* library gates compose the ring.  The search utilities here
enumerate or greedily explore the mix space, rank candidates by their
worst-case non-linearity, and report how close the best mix comes to the
transistor-level optimum of :mod:`repro.optimize.sizing` — which is
exactly the comparison the paper's Fig. 3 makes against its Fig. 2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.linearity import NonlinearityResult, nonlinearity
from ..cells.library import CellLibrary
from ..oscillator.config import ConfigurationError, RingConfiguration
from ..oscillator.period import TemperatureResponse, analytical_response, default_temperature_grid
from ..oscillator.ring import RingOscillator
from ..tech.parameters import TechnologyError

__all__ = [
    "CellMixCandidate",
    "CellMixSearchResult",
    "enumerate_configurations",
    "evaluate_configuration",
    "evaluate_configuration_bank",
    "search_cell_mix",
    "greedy_cell_mix",
    "DEFAULT_MIX_CELLS",
]

#: Cell types the paper's Fig. 3 draws its configurations from.
DEFAULT_MIX_CELLS = ("INV", "NAND2", "NAND3", "NOR2", "NOR3")


@dataclass(frozen=True)
class CellMixCandidate:
    """Evaluation of one candidate ring configuration."""

    configuration: RingConfiguration
    response: TemperatureResponse
    linearity: NonlinearityResult
    area_um2: float

    @property
    def label(self) -> str:
        return self.configuration.label()

    @property
    def max_abs_error_percent(self) -> float:
        return self.linearity.max_abs_error_percent


@dataclass(frozen=True)
class CellMixSearchResult:
    """Ranked outcome of a cell-mix search."""

    candidates: List[CellMixCandidate]
    evaluated_count: int

    def best(self) -> CellMixCandidate:
        return self.candidates[0]

    def top(self, count: int) -> List[CellMixCandidate]:
        return self.candidates[: max(count, 0)]

    def candidate_by_label(self, label: str) -> CellMixCandidate:
        for candidate in self.candidates:
            if candidate.label == label:
                return candidate
        raise TechnologyError(f"no evaluated candidate labelled {label!r}")


def enumerate_configurations(
    cell_names: Sequence[str] = DEFAULT_MIX_CELLS, stage_count: int = 5
) -> List[RingConfiguration]:
    """All order-insensitive mixes of the given cells with ``stage_count`` stages.

    The ring period only depends on the multiset of stages (each stage
    sees the same kind of load up to the next stage's input capacitance),
    so combinations-with-replacement enumeration is sufficient and keeps
    the space small (126 candidates for 5 cells over 5 stages).
    """
    if stage_count < 3 or stage_count % 2 == 0:
        raise ConfigurationError("stage_count must be an odd number >= 3")
    if not cell_names:
        raise ConfigurationError("at least one cell name is required")
    configurations: List[RingConfiguration] = []
    for combo in itertools.combinations_with_replacement(cell_names, stage_count):
        configurations.append(RingConfiguration(tuple(combo)))
    return configurations


def evaluate_configuration(
    library: CellLibrary,
    configuration: RingConfiguration,
    temperatures_c: Optional[Sequence[float]] = None,
    fit_method: str = "endpoint",
    scalar: bool = False,
) -> CellMixCandidate:
    """Evaluate the linearity (and area) of one configuration.

    Runs through the vectorized batch path unless ``scalar`` is set
    (the equivalence-test oracle).
    """
    temps = (
        np.asarray(temperatures_c, dtype=float)
        if temperatures_c is not None
        else default_temperature_grid()
    )
    ring = RingOscillator(library, configuration)
    response = analytical_response(ring, temps, scalar=scalar)
    return CellMixCandidate(
        configuration=configuration,
        response=response,
        linearity=nonlinearity(response, fit_method),
        area_um2=ring.area_um2(),
    )


def evaluate_configuration_bank(
    bank,
    temperatures_c: Optional[Sequence[float]] = None,
    fit_method: str = "endpoint",
) -> List[CellMixCandidate]:
    """Evaluate every configuration of a bank in one broadcast.

    The configuration-axis counterpart of :func:`evaluate_configuration`:
    one ``(config x temperature)`` period tensor through
    :meth:`repro.oscillator.bank.ConfigurationBank.period_tensor`, then
    per-row linearity metrics.  Candidates come back in bank order.
    """
    temps = (
        np.asarray(temperatures_c, dtype=float)
        if temperatures_c is not None
        else default_temperature_grid()
    )
    tensor = bank.period_tensor(temps)
    candidates: List[CellMixCandidate] = []
    for row, (configuration, ring) in enumerate(zip(bank.configurations, bank.rings())):
        response = TemperatureResponse(configuration.label(), temps, tensor[row])
        candidates.append(
            CellMixCandidate(
                configuration=configuration,
                response=response,
                linearity=nonlinearity(response, fit_method),
                area_um2=ring.area_um2(),
            )
        )
    return candidates


def search_cell_mix(
    library: CellLibrary,
    cell_names: Sequence[str] = DEFAULT_MIX_CELLS,
    stage_count: int = 5,
    temperatures_c: Optional[Sequence[float]] = None,
    fit_method: str = "endpoint",
    top_k: int = 10,
    scalar: bool = False,
) -> CellMixSearchResult:
    """Exhaustively rank all cell mixes of the given stage count.

    Parameters
    ----------
    library:
        Cell library supplying the candidates.
    cell_names:
        Cell types allowed in the mix.
    stage_count:
        Ring length (odd).
    temperatures_c:
        Temperature sweep used for the linearity metric.
    fit_method:
        Line-fit convention.
    top_k:
        How many ranked candidates to retain in the result (all are
        evaluated regardless).
    scalar:
        Evaluate every candidate through the scalar reference path
        instead of the stacked configuration axis.
    """
    configurations = enumerate_configurations(cell_names, stage_count)
    if scalar:
        candidates = [
            evaluate_configuration(
                library, configuration, temperatures_c, fit_method, scalar=True
            )
            for configuration in configurations
        ]
    else:
        # The whole candidate space is one configuration axis: stack it
        # into a ConfigurationBank and evaluate every mix in a single
        # (config x temperature) broadcast instead of one delay-stack
        # pass per candidate.
        from ..oscillator.bank import ConfigurationBank

        candidates = evaluate_configuration_bank(
            ConfigurationBank(library, configurations), temperatures_c, fit_method
        )
    candidates.sort(key=lambda candidate: candidate.max_abs_error_percent)
    kept = candidates[: top_k if top_k > 0 else len(candidates)]
    return CellMixSearchResult(candidates=kept, evaluated_count=len(candidates))


def greedy_cell_mix(
    library: CellLibrary,
    cell_names: Sequence[str] = DEFAULT_MIX_CELLS,
    stage_count: int = 5,
    temperatures_c: Optional[Sequence[float]] = None,
    fit_method: str = "endpoint",
    max_iterations: int = 50,
    scalar: bool = False,
) -> CellMixCandidate:
    """Greedy local search over the mix space.

    Starts from the all-inverter ring and repeatedly applies the single
    stage substitution that improves the worst-case non-linearity the
    most, stopping when no substitution helps.  Much cheaper than the
    exhaustive search for long rings (21+ stages) where enumeration
    explodes combinatorially.
    """
    if stage_count < 3 or stage_count % 2 == 0:
        raise ConfigurationError("stage_count must be an odd number >= 3")
    current = RingConfiguration.uniform(cell_names[0], stage_count)
    current_candidate = evaluate_configuration(
        library, current, temperatures_c, fit_method, scalar=scalar
    )

    for _ in range(max_iterations):
        best_neighbour: Optional[CellMixCandidate] = None
        stages = list(current_candidate.configuration.stages)
        for index in range(stage_count):
            for replacement in cell_names:
                if replacement == stages[index]:
                    continue
                neighbour_stages = list(stages)
                neighbour_stages[index] = replacement
                neighbour = evaluate_configuration(
                    library,
                    RingConfiguration(tuple(neighbour_stages)),
                    temperatures_c,
                    fit_method,
                    scalar=scalar,
                )
                if (
                    best_neighbour is None
                    or neighbour.max_abs_error_percent < best_neighbour.max_abs_error_percent
                ):
                    best_neighbour = neighbour
        if (
            best_neighbour is None
            or best_neighbour.max_abs_error_percent >= current_candidate.max_abs_error_percent
        ):
            break
        current_candidate = best_neighbour
    return current_candidate
