"""Sensor design-space optimisation: sizing, cell mixes, and placement."""

from .sizing import (
    PAPER_FIG2_RATIOS,
    SizingPoint,
    SizingSweepResult,
    build_sized_ring,
    optimize_width_ratio,
    sweep_width_ratio,
)
from .placement import (
    PlacementObjective,
    PlacementResult,
    PlacementScore,
    anneal_placement,
    greedy_placement,
)
from .cellmix import (
    DEFAULT_MIX_CELLS,
    CellMixCandidate,
    CellMixSearchResult,
    enumerate_configurations,
    evaluate_configuration,
    greedy_cell_mix,
    search_cell_mix,
)

__all__ = [
    "PAPER_FIG2_RATIOS",
    "SizingPoint",
    "SizingSweepResult",
    "build_sized_ring",
    "optimize_width_ratio",
    "sweep_width_ratio",
    "DEFAULT_MIX_CELLS",
    "CellMixCandidate",
    "CellMixSearchResult",
    "enumerate_configurations",
    "evaluate_configuration",
    "greedy_cell_mix",
    "search_cell_mix",
    "PlacementObjective",
    "PlacementResult",
    "PlacementScore",
    "anneal_placement",
    "greedy_placement",
]
