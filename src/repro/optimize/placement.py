"""Sensor-placement search: where should the multiplexed sensors sit?

The paper's thermal-mapping application distributes ring-oscillator
sensors "on different points" of the die, but leaves the points
themselves to the designer.  This module answers that placement question
as a discrete optimisation: given a set of *candidate* sites (typically
a dense grid over the floorplan) and a corpus of workload power maps,
pick the subset of ``k`` sites whose reconstructed thermal maps track
the true fields best across the whole corpus.

The expensive physics is hoisted out of the search loop entirely:

* the true fields of every workload come from **one** multi-RHS solve
  through the shared :class:`~repro.thermal.operator.ThermalOperator`
  (the batched block-CG / multigrid path on large grids), and
* every candidate site's calibrated temperature estimate is measured
  **once** per workload with a banked
  :class:`~repro.core.sensor_bank.SensorBank` scan over the *full*
  candidate set — a site's reading does not depend on which other sites
  are selected, so subset evaluation reduces to an inverse-distance
  reconstruction (:func:`~repro.core.mapping.reconstruct_maps`) of the
  estimate rows the subset keeps.

On top of that objective sit two searchers: deterministic greedy forward
selection (:func:`greedy_placement`) and a seeded simulated-annealing
swap search (:func:`anneal_placement`) that starts from the greedy
answer and trades single sites in and out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.mapping import reconstruct_maps
from ..core.sensor_bank import BankCalibration, SensorBank
from ..tech.parameters import TechnologyError
from ..thermal.grid import TemperatureMap

__all__ = [
    "PlacementScore",
    "PlacementObjective",
    "PlacementResult",
    "greedy_placement",
    "anneal_placement",
]


@dataclass(frozen=True)
class PlacementScore:
    """Reconstruction quality of one site subset over the workload corpus."""

    mean_rms_error_c: float
    worst_rms_error_c: float
    mean_abs_hotspot_error_c: float
    worst_abs_hotspot_error_c: float
    hotspot_weight: float

    @property
    def combined_c(self) -> float:
        """The scalar the searchers minimise (lower is better)."""
        return self.mean_rms_error_c + self.hotspot_weight * self.mean_abs_hotspot_error_c


class PlacementObjective:
    """Subset-evaluation oracle built from precomputed per-site estimates.

    Parameters
    ----------
    reference:
        Any workload's true :class:`~repro.thermal.grid.TemperatureMap`;
        only its geometry (die size, grid shape) is used.
    site_names / site_x_mm / site_y_mm:
        The candidate sites, in estimate-row order.
    estimates_c:
        ``(site, workload)`` calibrated temperature estimates of every
        candidate site under every workload — the one banked scan per
        workload, done up front.
    true_values_c:
        ``(workload, ny, nx)`` true temperature fields.
    hotspot_weight:
        Weight of the absolute hotspot error relative to the map RMS in
        the combined objective.
    """

    def __init__(
        self,
        reference: TemperatureMap,
        site_names: Sequence[str],
        site_x_mm: np.ndarray,
        site_y_mm: np.ndarray,
        estimates_c: np.ndarray,
        true_values_c: np.ndarray,
        hotspot_weight: float = 1.0,
    ) -> None:
        names = tuple(str(name) for name in site_names)
        xs = np.asarray(site_x_mm, dtype=float)
        ys = np.asarray(site_y_mm, dtype=float)
        estimates = np.asarray(estimates_c, dtype=float)
        truths = np.asarray(true_values_c, dtype=float)
        if estimates.ndim != 2:
            raise TechnologyError("estimates must be a (site, workload) matrix")
        if len(names) != estimates.shape[0] or xs.shape != ys.shape or xs.size != len(names):
            raise TechnologyError("site names, coordinates, and estimates must align")
        if truths.ndim != 3 or truths.shape[0] != estimates.shape[1]:
            raise TechnologyError(
                "true fields must be a (workload, ny, nx) stack matching the estimates"
            )
        if truths.shape[1:] != reference.values_c.shape:
            raise TechnologyError("true fields must match the reference grid shape")
        if hotspot_weight < 0.0:
            raise TechnologyError("hotspot weight must be non-negative")
        self.reference = reference
        self.site_names = names
        self.site_x_mm = xs
        self.site_y_mm = ys
        self.estimates_c = estimates
        self.true_values_c = truths
        self.hotspot_weight = float(hotspot_weight)
        flat = truths.reshape(truths.shape[0], -1)
        hot = np.argmax(flat, axis=1)
        self._hot_rows, self._hot_cols = np.unravel_index(hot, truths.shape[1:])
        self._hot_peaks = flat[np.arange(truths.shape[0]), hot]
        self.evaluations = 0

    @classmethod
    def from_bank(
        cls,
        bank: SensorBank,
        true_maps: Sequence[TemperatureMap],
        calibration: Optional[BankCalibration] = None,
        hotspot_weight: float = 1.0,
    ) -> "PlacementObjective":
        """Build the objective by scanning a candidate bank directly.

        One banked scan per workload map reads every candidate site at
        its local junction temperature through the full smart-sensor
        chain (ring, counter quantisation, two-point calibration).  The
        experiment layer routes the equivalent scans through the
        :class:`~repro.engine.sweep.Sweep` engine instead; this
        constructor is the self-contained path for tests and scripts.
        """
        maps = list(true_maps)
        if not maps:
            raise TechnologyError("placement needs at least one workload map")
        if calibration is None:
            calibration = bank.two_point_calibration()
        xs, ys = bank.positions()
        columns = []
        for true_map in maps:
            scan = bank.scan(true_map.sample_points(xs, ys), calibration=calibration)
            columns.append(np.asarray(scan.estimates_c, dtype=float))
        return cls(
            reference=maps[0],
            site_names=bank.names(),
            site_x_mm=xs,
            site_y_mm=ys,
            estimates_c=np.stack(columns, axis=1),
            true_values_c=np.stack([m.values_c for m in maps], axis=0),
            hotspot_weight=hotspot_weight,
        )

    @property
    def site_count(self) -> int:
        return len(self.site_names)

    @property
    def workload_count(self) -> int:
        return self.true_values_c.shape[0]

    def evaluate(self, subset: Sequence[int]) -> PlacementScore:
        """Score one site subset (order-insensitive, lower is better)."""
        indices = np.asarray(sorted(set(int(i) for i in subset)), dtype=int)
        if indices.size == 0:
            raise TechnologyError("a placement needs at least one site")
        if indices.min() < 0 or indices.max() >= self.site_count:
            raise TechnologyError("site index out of range")
        self.evaluations += 1
        maps = reconstruct_maps(
            self.reference,
            self.site_x_mm[indices],
            self.site_y_mm[indices],
            self.estimates_c[indices],  # (subset, workload)
        )  # (workload, ny, nx)
        rms = np.sqrt(np.mean((maps - self.true_values_c) ** 2, axis=(1, 2)))
        workloads = np.arange(self.workload_count)
        hotspot = np.abs(
            maps[workloads, self._hot_rows, self._hot_cols] - self._hot_peaks
        )
        return PlacementScore(
            mean_rms_error_c=float(np.mean(rms)),
            worst_rms_error_c=float(np.max(rms)),
            mean_abs_hotspot_error_c=float(np.mean(hotspot)),
            worst_abs_hotspot_error_c=float(np.max(hotspot)),
            hotspot_weight=self.hotspot_weight,
        )


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of one placement search."""

    method: str
    selected_indices: Tuple[int, ...]
    selected_names: Tuple[str, ...]
    score: PlacementScore
    #: Objective value after each search step (greedy: one entry per
    #: added sensor; annealing: one entry per accepted move).
    history_c: Tuple[float, ...] = field(default_factory=tuple)
    evaluations: int = 0


def greedy_placement(
    objective: PlacementObjective,
    sensor_count: int,
    must_include: Sequence[int] = (),
) -> PlacementResult:
    """Deterministic greedy forward selection of ``sensor_count`` sites.

    Starting from ``must_include`` (e.g. a site the DTM controller pins
    on a known hotspot), repeatedly adds the candidate that lowers the
    combined objective most; ties break on the lowest site index so the
    result is reproducible across runs and platforms.
    """
    if not 1 <= sensor_count <= objective.site_count:
        raise TechnologyError(
            f"sensor count must be in [1, {objective.site_count}], got {sensor_count}"
        )
    chosen: List[int] = sorted(set(int(i) for i in must_include))
    if len(chosen) > sensor_count:
        raise TechnologyError("must_include already exceeds the sensor count")
    start = objective.evaluations
    history: List[float] = []
    score = objective.evaluate(chosen) if chosen else None
    while len(chosen) < sensor_count:
        best_index, best_score = None, None
        for candidate in range(objective.site_count):
            if candidate in chosen:
                continue
            trial = objective.evaluate(chosen + [candidate])
            if best_score is None or trial.combined_c < best_score.combined_c:
                best_index, best_score = candidate, trial
        chosen.append(best_index)
        score = best_score
        history.append(score.combined_c)
    chosen_tuple = tuple(sorted(chosen))
    return PlacementResult(
        method="greedy",
        selected_indices=chosen_tuple,
        selected_names=tuple(objective.site_names[i] for i in chosen_tuple),
        score=score,
        history_c=tuple(history),
        evaluations=objective.evaluations - start,
    )


def anneal_placement(
    objective: PlacementObjective,
    sensor_count: int,
    seed: int = 2005,
    steps: int = 200,
    initial: Optional[Sequence[int]] = None,
    initial_temperature_c: float = 0.5,
    cooling: float = 0.97,
) -> PlacementResult:
    """Simulated-annealing swap search over ``sensor_count``-site subsets.

    Each move swaps one selected site for one unselected candidate;
    improving moves are always accepted, worsening moves with
    probability ``exp(-delta / T)`` under a geometric cooling schedule.
    The walk is driven by a seeded generator, so a given
    ``(objective, seed)`` pair always returns the same placement.  Pass
    the greedy answer as ``initial`` to refine it; the default starts
    from a random subset.
    """
    if not 1 <= sensor_count <= objective.site_count:
        raise TechnologyError(
            f"sensor count must be in [1, {objective.site_count}], got {sensor_count}"
        )
    if steps < 0:
        raise TechnologyError("annealing steps must be non-negative")
    if not 0.0 < cooling <= 1.0:
        raise TechnologyError("cooling factor must be in (0, 1]")
    if initial_temperature_c <= 0.0:
        raise TechnologyError("initial temperature must be positive")
    rng = np.random.default_rng(seed)
    if initial is None:
        current = sorted(
            int(i)
            for i in rng.choice(objective.site_count, size=sensor_count, replace=False)
        )
    else:
        current = sorted(set(int(i) for i in initial))
        if len(current) != sensor_count:
            raise TechnologyError("initial placement must have sensor_count distinct sites")
    start = objective.evaluations
    current_score = objective.evaluate(current)
    best, best_score = list(current), current_score
    history: List[float] = [current_score.combined_c]
    temperature = float(initial_temperature_c)
    for _ in range(steps):
        if sensor_count == objective.site_count:
            break  # nothing to swap with
        outside = [i for i in range(objective.site_count) if i not in current]
        leave = current[int(rng.integers(len(current)))]
        enter = outside[int(rng.integers(len(outside)))]
        trial = sorted(i for i in current if i != leave) + [enter]
        trial_score = objective.evaluate(trial)
        delta = trial_score.combined_c - current_score.combined_c
        if delta <= 0.0 or rng.random() < np.exp(-delta / temperature):
            current, current_score = sorted(trial), trial_score
            history.append(current_score.combined_c)
            if current_score.combined_c < best_score.combined_c:
                best, best_score = list(current), current_score
        temperature *= cooling
    best_tuple = tuple(sorted(best))
    return PlacementResult(
        method="anneal",
        selected_indices=best_tuple,
        selected_names=tuple(objective.site_names[i] for i in best_tuple),
        score=best_score,
        history_c=tuple(history),
        evaluations=objective.evaluations - start,
    )
