"""Transistor-level optimisation: the Wp/Wn width-ratio sweep (Section 2).

The paper first shows (its Fig. 2) that the non-linearity of an
inverter-based ring can be minimised by choosing the PMOS/NMOS width
ratio — a *transistor-level* optimisation requiring a custom cell.  The
functions here reproduce that study: sweep the ratio, evaluate the
non-linearity of the resulting ring, and locate the optimum with a
scalar minimiser.  The result also sets the reference the *cell-level*
optimisation (:mod:`repro.optimize.cellmix`) is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import optimize as scipy_optimize

from ..analysis.linearity import NonlinearityResult, nonlinearity
from ..cells.factories import inverter
from ..cells.library import CellLibrary
from ..oscillator.config import RingConfiguration
from ..oscillator.period import TemperatureResponse, analytical_response, default_temperature_grid
from ..oscillator.ring import RingOscillator
from ..tech.parameters import Technology, TechnologyError

__all__ = [
    "SizingPoint",
    "SizingSweepResult",
    "build_sized_ring",
    "sweep_width_ratio",
    "optimize_width_ratio",
    "PAPER_FIG2_RATIOS",
]

#: The Wp/Wn ratios marked in the paper's Fig. 2.
PAPER_FIG2_RATIOS = (1.75, 2.25, 3.0, 4.0)


@dataclass(frozen=True)
class SizingPoint:
    """Evaluation of one candidate width ratio."""

    width_ratio: float
    response: TemperatureResponse
    linearity: NonlinearityResult

    @property
    def max_abs_error_percent(self) -> float:
        return self.linearity.max_abs_error_percent


@dataclass(frozen=True)
class SizingSweepResult:
    """Full result of a Wp/Wn ratio sweep."""

    points: List[SizingPoint]
    stage_count: int
    nmos_width_um: float

    def best(self) -> SizingPoint:
        """The swept point with the smallest worst-case non-linearity."""
        return min(self.points, key=lambda point: point.max_abs_error_percent)

    def worst(self) -> SizingPoint:
        return max(self.points, key=lambda point: point.max_abs_error_percent)

    def ratios(self) -> np.ndarray:
        return np.asarray([point.width_ratio for point in self.points])

    def max_errors_percent(self) -> np.ndarray:
        return np.asarray([point.max_abs_error_percent for point in self.points])

    def improvement_factor(self) -> float:
        """Worst-case error of the worst ratio over that of the best ratio."""
        best = self.best().max_abs_error_percent
        if best == 0.0:
            return float("inf")
        return self.worst().max_abs_error_percent / best


def build_sized_ring(
    technology: Technology,
    width_ratio: float,
    nmos_width_um: float = 1.05,
    stage_count: int = 5,
) -> RingOscillator:
    """Build an inverter ring with a custom (non-library) Wp/Wn ratio."""
    if width_ratio <= 0.0:
        raise TechnologyError("width ratio must be positive")
    if nmos_width_um <= 0.0:
        raise TechnologyError("NMOS width must be positive")
    custom = CellLibrary(f"sized_{technology.name}_{width_ratio:.3f}", technology)
    custom.add(
        inverter(
            technology,
            nmos_width_um=nmos_width_um,
            pmos_width_um=nmos_width_um * width_ratio,
            name="INV_SIZED",
        )
    )
    return RingOscillator(custom, RingConfiguration.uniform("INV_SIZED", stage_count))


def sweep_width_ratio(
    technology: Technology,
    ratios: Sequence[float] = PAPER_FIG2_RATIOS,
    nmos_width_um: float = 1.05,
    stage_count: int = 5,
    temperatures_c: Optional[Sequence[float]] = None,
    fit_method: str = "endpoint",
    scalar: bool = False,
) -> SizingSweepResult:
    """Evaluate the ring non-linearity at each candidate Wp/Wn ratio.

    Parameters
    ----------
    technology:
        CMOS technology.
    ratios:
        Width ratios to evaluate (the paper's Fig. 2 uses 1.75/2.25/3/4).
    nmos_width_um:
        Fixed NMOS width; the PMOS width is the ratio times this.
    stage_count:
        Ring length (5 in the paper).
    temperatures_c:
        Sweep grid; the paper's -50..150 range by default.
    fit_method:
        Line-fit convention for the non-linearity metric.
    scalar:
        Evaluate through the scalar reference path instead of the
        vectorized batch engine (equivalence-test oracle).
    """
    if not ratios:
        raise TechnologyError("at least one ratio is required")
    temps = (
        np.asarray(temperatures_c, dtype=float)
        if temperatures_c is not None
        else default_temperature_grid()
    )
    points: List[SizingPoint] = []
    if scalar:
        for ratio in ratios:
            ring = build_sized_ring(technology, float(ratio), nmos_width_um, stage_count)
            response = analytical_response(ring, temps, scalar=True)
            points.append(
                SizingPoint(
                    width_ratio=float(ratio),
                    response=response,
                    linearity=nonlinearity(response, fit_method),
                )
            )
    else:
        # The declarative form of this sweep: one width_ratio axis over
        # one temperature axis, lowered by the sweep planner onto the
        # same build_sized_ring + vectorized period_series evaluation.
        from ..engine.sweep import Axis, Sweep

        result = (
            Sweep(technology=technology)
            .over(
                Axis.width_ratio(
                    [float(r) for r in ratios],
                    nmos_width_um=nmos_width_um,
                    stage_count=stage_count,
                )
            )
            .over(Axis.temperature(temps))
            .run()
        )
        label = RingConfiguration.uniform("INV_SIZED", stage_count).label()
        for ratio in result.coordinates("width_ratio"):
            response = TemperatureResponse(
                label, temps, result.select(width_ratio=ratio).values
            )
            points.append(
                SizingPoint(
                    width_ratio=float(ratio),
                    response=response,
                    linearity=nonlinearity(response, fit_method),
                )
            )
    return SizingSweepResult(points=points, stage_count=stage_count, nmos_width_um=nmos_width_um)


def optimize_width_ratio(
    technology: Technology,
    ratio_bounds: Sequence[float] = (1.0, 6.0),
    nmos_width_um: float = 1.05,
    stage_count: int = 5,
    temperatures_c: Optional[Sequence[float]] = None,
    fit_method: str = "endpoint",
    scalar: bool = False,
) -> SizingPoint:
    """Find the Wp/Wn ratio minimising the worst-case non-linearity.

    Uses bounded scalar minimisation; the objective is smooth in the
    ratio so this converges in a handful of evaluations.  Each objective
    evaluation runs through the vectorized batch path unless ``scalar``
    is set.
    """
    if len(ratio_bounds) != 2 or ratio_bounds[0] >= ratio_bounds[1]:
        raise TechnologyError("ratio_bounds must be an increasing (low, high) pair")
    temps = (
        np.asarray(temperatures_c, dtype=float)
        if temperatures_c is not None
        else default_temperature_grid()
    )

    def objective(ratio: float) -> float:
        ring = build_sized_ring(technology, float(ratio), nmos_width_um, stage_count)
        response = analytical_response(ring, temps, scalar=scalar)
        return nonlinearity(response, fit_method).max_abs_error_percent

    result = scipy_optimize.minimize_scalar(
        objective, bounds=tuple(ratio_bounds), method="bounded",
        options={"xatol": 1e-3},
    )
    best_ratio = float(result.x)
    ring = build_sized_ring(technology, best_ratio, nmos_width_um, stage_count)
    response = analytical_response(ring, temps, scalar=scalar)
    return SizingPoint(
        width_ratio=best_ratio,
        response=response,
        linearity=nonlinearity(response, fit_method),
    )
