"""Resolution and quantisation analysis of the digital readout.

The smart sensor converts the oscillation period to a digital code by
counting ring cycles inside a fixed gating window (or, equivalently,
counting reference-clock cycles during a fixed number of ring cycles).
The count is an integer, so the sensor has a finite temperature
resolution; this module computes it from the analytical characteristic
and the readout parameters, and provides the helper used to pick a
gating window long enough for a target resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..oscillator.period import TemperatureResponse
from ..tech.parameters import TechnologyError

__all__ = ["ResolutionReport", "resolution_report", "required_window_for_resolution"]


@dataclass(frozen=True)
class ResolutionReport:
    """Quantisation-limited resolution of a counter-based readout.

    Attributes
    ----------
    label:
        Configuration label.
    window_s:
        Gating-window length used by the counter.
    count_min / count_max:
        Counter values at the two ends of the temperature range.
    counts_per_kelvin:
        Average |d(count)/dT| over the range.
    temperature_resolution_c:
        Temperature change corresponding to one LSB of the counter —
        the quantisation-limited resolution.
    bits_required:
        Counter width needed to hold the largest count without overflow.
    """

    label: str
    window_s: float
    count_min: float
    count_max: float
    counts_per_kelvin: float
    temperature_resolution_c: float
    bits_required: int


def resolution_report(
    response: TemperatureResponse, window_s: float
) -> ResolutionReport:
    """Resolution of a cycle-counting readout with the given gating window.

    The counter accumulates ``window / period(T)`` cycles, so the count
    decreases as temperature (and period) rises.
    """
    if window_s <= 0.0:
        raise TechnologyError("gating window must be positive")
    temps = response.temperatures_c
    counts = window_s / response.periods_s
    count_span = abs(float(counts[0] - counts[-1]))
    temp_span = float(temps[-1] - temps[0])
    if count_span == 0.0:
        raise TechnologyError("counter output does not change over the range")
    counts_per_kelvin = count_span / temp_span
    resolution_c = 1.0 / counts_per_kelvin
    max_count = float(np.max(counts))
    bits = int(np.ceil(np.log2(max_count + 1.0)))
    return ResolutionReport(
        label=response.label,
        window_s=window_s,
        count_min=float(np.min(counts)),
        count_max=max_count,
        counts_per_kelvin=counts_per_kelvin,
        temperature_resolution_c=resolution_c,
        bits_required=bits,
    )


def required_window_for_resolution(
    response: TemperatureResponse, target_resolution_c: float
) -> float:
    """Smallest gating window achieving a target temperature resolution.

    Inverts the resolution formula: one LSB must correspond to at most
    ``target_resolution_c`` kelvin.  The resulting window scales linearly
    with the required resolution, which is the measurement-time /
    resolution trade-off every counting sensor faces.
    """
    if target_resolution_c <= 0.0:
        raise TechnologyError("target resolution must be positive")
    # counts_per_kelvin is proportional to the window; find the
    # proportionality constant with a unit window.
    unit = resolution_report(response, window_s=1.0)
    counts_per_kelvin_per_second = unit.counts_per_kelvin
    required = 1.0 / (target_resolution_c * counts_per_kelvin_per_second)
    return required
