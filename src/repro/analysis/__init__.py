"""Sensor-characteristic analysis: linearity, sensitivity, resolution, MC."""

from .linearity import (
    LinearFit,
    NonlinearityResult,
    fit_line,
    nonlinearity,
    temperature_error,
)
from .sensitivity import SensitivityReport, sensitivity_report
from .resolution import (
    ResolutionReport,
    required_window_for_resolution,
    resolution_report,
)
from .statistics import SummaryStatistics, summarize
from .montecarlo import MonteCarloStudy, run_monte_carlo
from .supply import SupplySensitivityReport, supply_sensitivity

__all__ = [
    "LinearFit",
    "NonlinearityResult",
    "fit_line",
    "nonlinearity",
    "temperature_error",
    "SensitivityReport",
    "sensitivity_report",
    "ResolutionReport",
    "required_window_for_resolution",
    "resolution_report",
    "SummaryStatistics",
    "summarize",
    "MonteCarloStudy",
    "run_monte_carlo",
    "SupplySensitivityReport",
    "supply_sensitivity",
]
