"""Sensitivity metrics of a ring-oscillator temperature sensor.

The non-linearity (:mod:`repro.analysis.linearity`) tells how straight
the characteristic is; the sensitivity tells how steep it is.  Both are
needed to judge a configuration: a perfectly linear sensor with no slope
cannot resolve anything, and the paper's cell-mix choice trades a little
of one for the other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..oscillator.period import TemperatureResponse
from ..tech.parameters import TechnologyError

__all__ = ["SensitivityReport", "sensitivity_report"]


@dataclass(frozen=True)
class SensitivityReport:
    """Summary of the slope of a temperature characteristic.

    Attributes
    ----------
    label:
        Configuration label.
    mean_sensitivity_s_per_k:
        Average d(period)/dT over the range.
    relative_sensitivity_per_k:
        Average (1/period) d(period)/dT — comparable across rings with
        different absolute periods.
    min_local_sensitivity_s_per_k / max_local_sensitivity_s_per_k:
        Extremes of the local slope over the range; a large ratio between
        them is another symptom of curvature.
    frequency_sensitivity_ppm_per_k:
        Average relative *frequency* change in ppm/K (negative: frequency
        falls as temperature rises).
    """

    label: str
    mean_sensitivity_s_per_k: float
    relative_sensitivity_per_k: float
    min_local_sensitivity_s_per_k: float
    max_local_sensitivity_s_per_k: float
    frequency_sensitivity_ppm_per_k: float

    @property
    def slope_spread_ratio(self) -> float:
        """max/min local slope; 1.0 for a perfectly linear sensor."""
        if self.min_local_sensitivity_s_per_k <= 0.0:
            return float("inf")
        return self.max_local_sensitivity_s_per_k / self.min_local_sensitivity_s_per_k


def sensitivity_report(response: TemperatureResponse) -> SensitivityReport:
    """Compute the sensitivity summary of a temperature response."""
    temps = response.temperatures_c
    periods = response.periods_s
    local = np.diff(periods) / np.diff(temps)
    if local.size == 0:
        raise TechnologyError("response too short for a sensitivity report")

    mid_period = float(
        np.interp(0.5 * (temps[0] + temps[-1]), temps, periods)
    )
    mean_sens = response.mean_sensitivity()
    freqs = response.frequencies_hz
    mean_freq_sens = (freqs[-1] - freqs[0]) / (temps[-1] - temps[0])
    mid_freq = float(np.interp(0.5 * (temps[0] + temps[-1]), temps, freqs))

    return SensitivityReport(
        label=response.label,
        mean_sensitivity_s_per_k=mean_sens,
        relative_sensitivity_per_k=mean_sens / mid_period,
        min_local_sensitivity_s_per_k=float(np.min(local)),
        max_local_sensitivity_s_per_k=float(np.max(local)),
        frequency_sensitivity_ppm_per_k=mean_freq_sens / mid_freq * 1e6,
    )
