"""Small statistics helpers shared by the Monte-Carlo and benchmark code."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..tech.parameters import TechnologyError

__all__ = ["SummaryStatistics", "summarize"]


@dataclass(frozen=True)
class SummaryStatistics:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p05: float
    p50: float
    p95: float

    def describe(self, unit: str = "") -> str:
        suffix = f" {unit}" if unit else ""
        return (
            f"n={self.count} mean={self.mean:.4g}{suffix} std={self.std:.4g}{suffix} "
            f"min={self.minimum:.4g}{suffix} p50={self.p50:.4g}{suffix} "
            f"max={self.maximum:.4g}{suffix}"
        )


def summarize(values: Sequence[float]) -> SummaryStatistics:
    """Summarise a non-empty sample of floats."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise TechnologyError("cannot summarise an empty sample")
    if np.any(np.isnan(array)):
        raise TechnologyError("sample contains NaN values")
    # np.mean's pairwise summation can land one ULP outside the sample
    # range (e.g. three identical subnormal values); clamp so the
    # min <= mean <= max invariant holds exactly.
    mean = float(np.clip(np.mean(array), np.min(array), np.max(array)))
    return SummaryStatistics(
        count=int(array.size),
        mean=mean,
        std=float(np.std(array)),
        minimum=float(np.min(array)),
        maximum=float(np.max(array)),
        p05=float(np.percentile(array, 5)),
        p50=float(np.percentile(array, 50)),
        p95=float(np.percentile(array, 95)),
    )
