"""Monte-Carlo process-variation studies.

The absolute oscillation frequency of the ring sensor varies strongly
with process, which is why the smart unit needs calibration; the paper
argues the *linearity* is much less affected.  The study functions here
quantify both statements over Monte-Carlo samples of the technology and
feed the calibration ablation bench (ABL-CAL in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..cells.library import default_library
from ..oscillator.config import RingConfiguration
from ..oscillator.period import (
    TemperatureResponse,
    analytical_response,
    default_temperature_grid,
    validate_temperature_grid,
)
from ..oscillator.ring import RingOscillator
from ..tech.corners import VariationModel, sample_technologies, sample_technology_array
from ..tech.parameters import Technology, TechnologyError
from .linearity import nonlinearity
from .statistics import SummaryStatistics, summarize

__all__ = ["MonteCarloStudy", "run_monte_carlo"]


@dataclass(frozen=True)
class MonteCarloStudy:
    """Result of a Monte-Carlo sweep of one ring configuration.

    Attributes
    ----------
    label:
        Ring configuration label.
    sample_count:
        Number of Monte-Carlo technology samples.
    period_at_reference:
        Summary of the period at the reference temperature across the
        samples (absolute spread — what calibration must remove).
    nonlinearity_percent:
        Summary of the worst-case non-linearity across samples (what
        calibration cannot remove but is expected to stay small).
    sensitivity_s_per_k:
        Summary of the mean sensitivity across samples.
    responses:
        The individual temperature responses (for downstream analysis).
    """

    label: str
    sample_count: int
    period_at_reference: SummaryStatistics
    nonlinearity_percent: SummaryStatistics
    sensitivity_s_per_k: SummaryStatistics
    responses: List[TemperatureResponse]

    @property
    def period_spread_percent(self) -> float:
        """Full spread of the reference-temperature period, in percent."""
        stats = self.period_at_reference
        return (stats.maximum - stats.minimum) / stats.mean * 100.0


def run_monte_carlo(
    base_technology: Technology,
    configuration: RingConfiguration,
    sample_count: int = 25,
    temperatures_c: Optional[Sequence[float]] = None,
    reference_temperature_c: float = 25.0,
    variation: Optional[VariationModel] = None,
    seed: Optional[int] = 1234,
    ring_builder: Optional[Callable[[Technology, RingConfiguration], RingOscillator]] = None,
    scalar: bool = False,
) -> MonteCarloStudy:
    """Run a Monte-Carlo linearity/spread study for one configuration.

    Parameters
    ----------
    base_technology:
        Typical technology to perturb.
    configuration:
        Ring configuration under study.
    sample_count:
        Number of Monte-Carlo samples.
    temperatures_c:
        Sweep grid (defaults to the paper's -50..150 range).  Validated
        up front via
        :func:`~repro.oscillator.period.validate_temperature_grid`:
        unsorted grids are sorted, and duplicate or non-finite
        temperatures raise :class:`TechnologyError` immediately.
    reference_temperature_c:
        Temperature at which the absolute-period spread is reported.
    variation:
        Process-variation model; defaults reproduce typical 0.35 um
        matching figures.
    seed:
        RNG seed for reproducibility.
    ring_builder:
        Hook to customise how the ring is built per technology sample
        (defaults to the default library with standard sizing).
    scalar:
        When true, sweep every sample one temperature at a time through
        the scalar reference path instead of the vectorized batch
        engine.  Kept as the oracle for the engine equivalence tests;
        several-fold slower at realistic sample counts.
    """
    if sample_count < 2:
        raise TechnologyError("sample_count must be at least 2")
    # Validate user grids up front: unsorted, duplicate or non-finite
    # temperatures used to slip through and silently break the
    # temps[0] <= reference <= temps[-1] range check below.
    temps = (
        validate_temperature_grid(temperatures_c, context="run_monte_carlo sweep")
        if temperatures_c is not None
        else default_temperature_grid(points=21)
    )
    if not temps[0] <= reference_temperature_c <= temps[-1]:
        raise TechnologyError("reference temperature must lie inside the sweep range")

    # With the default ring builder the vectorized path draws the
    # population directly in struct-of-arrays form and evaluates the
    # whole (sample x temperature) period matrix as one declarative
    # sweep (sample axis x temperature axis) — no per-sample library,
    # rebind or Python loop.  A custom ring_builder (or scalar mode)
    # falls back to the per-sample sweep.
    use_period_matrix = ring_builder is None and not scalar
    if ring_builder is None:
        def ring_builder(tech: Technology, config: RingConfiguration) -> RingOscillator:
            return RingOscillator(default_library(tech), config)

    responses: List[TemperatureResponse] = []
    if use_period_matrix:
        from ..engine.sweep import Axis, Sweep

        population = sample_technology_array(
            base_technology, sample_count, model=variation, seed=seed
        )
        base_ring = ring_builder(base_technology, configuration)
        matrix = (
            Sweep(ring=base_ring)
            .over(Axis.sample(population))
            .over(Axis.temperature(temps))
            .run()
            .values
        )
        label = base_ring.label()
        responses = [TemperatureResponse(label, temps, row) for row in matrix]
    else:
        samples = sample_technologies(
            base_technology, sample_count, model=variation, seed=seed
        )
        responses = [
            analytical_response(ring_builder(sample, configuration), temps, scalar=scalar)
            for sample in samples
        ]

    reference_periods: List[float] = []
    worst_nonlinearities: List[float] = []
    sensitivities: List[float] = []
    for response in responses:
        reference_periods.append(response.period_at(reference_temperature_c))
        worst_nonlinearities.append(nonlinearity(response).max_abs_error_percent)
        sensitivities.append(response.mean_sensitivity())

    return MonteCarloStudy(
        label=configuration.label(),
        sample_count=sample_count,
        period_at_reference=summarize(reference_periods),
        nonlinearity_percent=summarize(worst_nonlinearities),
        sensitivity_s_per_k=summarize(sensitivities),
        responses=responses,
    )
