"""Supply-voltage cross-sensitivity of the ring-oscillator sensor.

A known weakness of delay-based temperature sensing is that the gate
delay also depends on the supply voltage, so supply noise or IR drop
masquerades as a temperature change.  The paper does not analyse this,
but any user of the sensor must budget for it, so the reproduction
provides the analysis: how many millivolts of supply error correspond to
one kelvin of apparent temperature change, for a given ring
configuration — and how the cell mix affects that trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..cells.library import CellLibrary, default_library
from ..oscillator.config import RingConfiguration
from ..oscillator.ring import RingOscillator
from ..tech.parameters import Technology, TechnologyError

__all__ = ["SupplySensitivityReport", "supply_sensitivity"]


@dataclass(frozen=True)
class SupplySensitivityReport:
    """Cross-sensitivity of one ring configuration to supply voltage.

    Attributes
    ----------
    label:
        Ring configuration label.
    nominal_supply_v:
        Supply voltage around which the sensitivities are evaluated.
    temperature_c:
        Junction temperature of the evaluation.
    period_per_kelvin_s:
        d(period)/dT at the operating point.
    period_per_volt_s:
        d(period)/dVdd at the operating point (negative: more supply,
        faster ring).
    """

    label: str
    nominal_supply_v: float
    temperature_c: float
    period_per_kelvin_s: float
    period_per_volt_s: float

    @property
    def kelvin_per_millivolt(self) -> float:
        """Apparent temperature change caused by 1 mV of supply change."""
        return abs(self.period_per_volt_s) / abs(self.period_per_kelvin_s) * 1e-3

    def supply_error_budget_mv(self, temperature_error_budget_c: float) -> float:
        """Largest supply deviation consistent with a temperature-error budget."""
        if temperature_error_budget_c <= 0.0:
            raise TechnologyError("temperature error budget must be positive")
        return temperature_error_budget_c / self.kelvin_per_millivolt


def supply_sensitivity(
    technology: Technology,
    configuration: RingConfiguration,
    temperature_c: float = 85.0,
    supply_delta_v: float = 0.05,
    temperature_delta_c: float = 5.0,
    library_builder: Optional[Callable[[Technology], CellLibrary]] = None,
    scalar: bool = False,
) -> SupplySensitivityReport:
    """Evaluate the temperature and supply sensitivities of a ring.

    Both derivatives are taken by central differences: the supply
    derivative at ``Vdd +/- delta`` (input capacitances do not change,
    only the drive), the temperature derivative directly from the period
    model.

    On the default path the ring is built once and both finite
    differences are declared as sweeps
    (:class:`~repro.engine.sweep.Sweep`): the supply derivative as one
    two-point ``supply`` axis (lowered onto a stacked two-sample
    technology population) and the temperature derivative as one
    two-point ``temperature`` axis — one library build instead of four.
    Passing a custom ``library_builder`` (whose cells may legitimately
    depend on the supply) or ``scalar=True`` falls back to the original
    rebuild-per-operating-point loop, which is kept as the equivalence
    oracle.
    """
    if supply_delta_v <= 0.0 or temperature_delta_c <= 0.0:
        raise TechnologyError("finite-difference deltas must be positive")
    builder = library_builder or default_library
    nominal_vdd = technology.vdd
    if nominal_vdd - supply_delta_v <= 0.0:
        # Checked up front so both evaluation modes fail with the same
        # error type (the scalar oracle would hit it inside with_supply).
        raise TechnologyError(
            f"supply_delta_v {supply_delta_v} V drives the lower supply "
            f"non-positive (nominal {nominal_vdd} V)"
        )

    if scalar or library_builder is not None:
        def period_at(vdd: float, temp_c: float) -> float:
            tech = technology.with_supply(vdd)
            ring = RingOscillator(builder(tech), configuration)
            return ring.period(temp_c)

        period_per_volt = (
            period_at(nominal_vdd + supply_delta_v, temperature_c)
            - period_at(nominal_vdd - supply_delta_v, temperature_c)
        ) / (2.0 * supply_delta_v)
        period_per_kelvin = (
            period_at(nominal_vdd, temperature_c + temperature_delta_c)
            - period_at(nominal_vdd, temperature_c - temperature_delta_c)
        ) / (2.0 * temperature_delta_c)
    else:
        from ..engine.sweep import Axis, Sweep

        ring = RingOscillator(builder(technology), configuration)
        high_v = nominal_vdd + supply_delta_v
        low_v = nominal_vdd - supply_delta_v
        supply_periods = (
            Sweep(ring=ring)
            .over(Axis.supply([high_v, low_v]))
            .over(Axis.temperature([temperature_c]))
            .run()
        )
        period_per_volt = (
            supply_periods.select(supply=high_v).item()
            - supply_periods.select(supply=low_v).item()
        ) / (2.0 * supply_delta_v)
        high_t = temperature_c + temperature_delta_c
        low_t = temperature_c - temperature_delta_c
        temp_periods = (
            Sweep(ring=ring).over(Axis.temperature([high_t, low_t])).run()
        )
        period_per_kelvin = (
            temp_periods.select(temperature=high_t).item()
            - temp_periods.select(temperature=low_t).item()
        ) / (2.0 * temperature_delta_c)
    if period_per_kelvin == 0.0:
        raise TechnologyError("the ring has no temperature sensitivity at this point")

    return SupplySensitivityReport(
        label=configuration.label(),
        nominal_supply_v=nominal_vdd,
        temperature_c=temperature_c,
        period_per_kelvin_s=period_per_kelvin,
        period_per_volt_s=period_per_volt,
    )
