"""Non-linearity analysis of a sensor characteristic.

The paper's Fig. 2 and Fig. 3 plot the *non-linearity error* of the ring
oscillator's period-versus-temperature characteristic: the deviation of
the measured curve from a straight line, expressed as a percentage of
the full-scale span.  Two line-fit conventions are supported, both in
common use for sensor linearity:

``"endpoint"``
    The straight line through the first and last points of the range.
    Simple and what a two-point-calibrated sensor actually realises.

``"best_fit"``
    The least-squares line over all points; always gives the smaller
    (and more flattering) error figure.

Besides the percentage error curve (the quantity plotted by the paper),
the residuals can be converted into an equivalent temperature error in
kelvin by dividing by the fitted slope — the number a user of the sensor
ultimately cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..oscillator.period import TemperatureResponse
from ..tech.parameters import TechnologyError

__all__ = [
    "LinearFit",
    "NonlinearityResult",
    "fit_line",
    "nonlinearity",
    "temperature_error",
]

_FIT_METHODS = ("endpoint", "best_fit")


@dataclass(frozen=True)
class LinearFit:
    """A straight-line approximation ``period = slope * T + intercept``."""

    slope: float
    intercept: float
    method: str

    def evaluate(self, temperatures_c: np.ndarray) -> np.ndarray:
        return self.slope * np.asarray(temperatures_c, dtype=float) + self.intercept


@dataclass(frozen=True)
class NonlinearityResult:
    """Non-linearity error of one temperature response.

    Attributes
    ----------
    label:
        Configuration label of the analysed response.
    method:
        Line-fit convention used.
    temperatures_c:
        The analysed temperatures.
    error_percent:
        Deviation from the fitted line at each temperature, as a
        percentage of the full-scale period span (the paper's y-axis).
    fit:
        The underlying straight-line fit.
    full_scale_span_s:
        Period span used for normalisation.
    """

    label: str
    method: str
    temperatures_c: np.ndarray
    error_percent: np.ndarray
    fit: LinearFit
    full_scale_span_s: float

    @property
    def max_abs_error_percent(self) -> float:
        """Worst-case |non-linearity| in percent of full scale."""
        return float(np.max(np.abs(self.error_percent)))

    @property
    def rms_error_percent(self) -> float:
        """Root-mean-square non-linearity in percent of full scale."""
        return float(np.sqrt(np.mean(self.error_percent ** 2)))

    def error_at(self, temperature_c: float) -> float:
        """Interpolated non-linearity error (percent) at one temperature."""
        return float(
            np.interp(temperature_c, self.temperatures_c, self.error_percent)
        )

    def equivalent_temperature_error_c(self) -> np.ndarray:
        """Residuals converted to kelvin through the fitted slope."""
        if self.fit.slope == 0.0:
            raise TechnologyError("fitted slope is zero; the sensor has no sensitivity")
        residual_s = self.error_percent / 100.0 * self.full_scale_span_s
        return residual_s / self.fit.slope

    @property
    def max_abs_temperature_error_c(self) -> float:
        """Worst-case |temperature error| implied by the non-linearity."""
        return float(np.max(np.abs(self.equivalent_temperature_error_c())))


def fit_line(response: TemperatureResponse, method: str = "endpoint") -> LinearFit:
    """Fit a straight line to a temperature response.

    Parameters
    ----------
    response:
        The characteristic to fit.
    method:
        ``"endpoint"`` or ``"best_fit"``.
    """
    if method not in _FIT_METHODS:
        raise TechnologyError(
            f"unknown fit method {method!r}; choose one of {_FIT_METHODS}"
        )
    temps = response.temperatures_c
    periods = response.periods_s
    if method == "endpoint":
        slope = (periods[-1] - periods[0]) / (temps[-1] - temps[0])
        intercept = periods[0] - slope * temps[0]
    else:
        slope, intercept = np.polyfit(temps, periods, deg=1)
    return LinearFit(slope=float(slope), intercept=float(intercept), method=method)


def nonlinearity(
    response: TemperatureResponse, method: str = "endpoint"
) -> NonlinearityResult:
    """Non-linearity error curve of a temperature response.

    The error at each temperature is ``(period - line) / span * 100`` with
    ``span`` the full-scale period change over the analysed range, which
    is how the paper normalises its Fig. 2 / Fig. 3 y-axis.
    """
    fit = fit_line(response, method)
    span = abs(response.span_s())
    if span <= 0.0:
        raise TechnologyError(
            "temperature response has no span; the sensor characteristic is flat"
        )
    residual = response.periods_s - fit.evaluate(response.temperatures_c)
    error_percent = residual / span * 100.0
    return NonlinearityResult(
        label=response.label,
        method=method,
        temperatures_c=response.temperatures_c,
        error_percent=error_percent,
        fit=fit,
        full_scale_span_s=span,
    )


def temperature_error(
    response: TemperatureResponse, method: str = "endpoint"
) -> np.ndarray:
    """Equivalent temperature error (deg C) of the linear approximation."""
    return nonlinearity(response, method).equivalent_temperature_error_c()
